// Compatibility shim: the structured service record now lives in
// pipeline/record.h.
//
// The layer DAG (tools/censyslint/layers.txt) places the CQRS data plane
// below the scanning layers — interrogation *produces* records, the
// pipeline *owns* the type they flow through. This header re-exports the
// names under censys::interrogate so scanner-side code (and the layers
// above it) keeps reading naturally: the interrogator fills in a
// ServiceRecord, the pipeline journals it.
#pragma once

#include "pipeline/record.h"

namespace censys::interrogate {

using DetectionMethod = pipeline::DetectionMethod;
using ServiceRecord = pipeline::ServiceRecord;
using pipeline::ToString;

}  // namespace censys::interrogate
