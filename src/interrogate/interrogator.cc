#include "interrogate/interrogator.h"

#include "cert/x509.h"
#include "core/fault.h"
#include "core/rng.h"
#include "core/strings.h"
#include "core/trace.h"
#include "interrogate/scanners.h"
#include "proto/tls.h"

namespace censys::interrogate {

void Interrogator::BindMetrics(metrics::Registry* registry) {
  attempts_metric_ = metrics::BindCounter(registry,
                                          "censys.interrogate.attempts");
  no_answer_metric_ = metrics::BindCounter(registry,
                                           "censys.interrogate.no_answer");
  handshakes_metric_ = metrics::BindCounter(registry,
                                            "censys.interrogate.handshakes");
  validated_metric_ = metrics::BindCounter(registry,
                                           "censys.interrogate.validated");
  unvalidated_metric_ = metrics::BindCounter(
      registry, "censys.interrogate.unvalidated");
  latency_metric_ = metrics::BindHistogram(registry,
                                           "censys.interrogate.latency_us");
}

std::optional<ServiceRecord> Interrogator::Interrogate(
    ServiceKey key, Timestamp t, int pop_id,
    std::optional<proto::Protocol> udp_hint, std::string_view sni_name) {
  InterrogationResult result =
      InterrogateDetached(key, t, pop_id, udp_hint, sni_name);
  CommitResult(result);
  return result.record;
}

InterrogationResult Interrogator::InterrogateDetached(
    ServiceKey key, Timestamp t, int pop_id,
    std::optional<proto::Protocol> udp_hint, std::string_view sni_name) const {
  metrics::ScopedTimer timer(latency_metric_);
  TRACE_SPAN("interrogate", "probe");
  attempts_metric_.Add();

  InterrogationResult result;
  result.key = key;
  result.at = t;
  result.pop_id = pop_id;

  // Injected probe loss ("interrogate.probe"): the target looks dead for
  // this attempt. Every fault mode reduces to a lost probe on this pure
  // path — there is nothing to tear or corrupt.
  if (fault::Hit("interrogate.probe").has_value()) {
    no_answer_metric_.Add();
    return result;
  }

  const simnet::ProbeContext ctx{&profile_, pop_id};
  const auto session = net_.PeekL7(ctx, key, t);
  if (!session.has_value()) {
    no_answer_metric_.Add();
    return result;
  }
  result.connected = true;
  result.honeypot = session->service.honeypot;
  result.record = BuildRecordDetached(*session, t, udp_hint, sni_name, result);
  return result;
}

void Interrogator::CommitResult(const InterrogationResult& result) {
  if (!result.connected) return;
  TRACE_SPAN("interrogate", "commit");
  ++handshakes_;
  handshakes_metric_.Add();
  if (result.record.has_value() && result.record->handshake_validated) {
    validated_metric_.Add();
  } else {
    unvalidated_metric_.Add();
  }
  if (result.honeypot) {
    const simnet::ProbeContext ctx{&profile_, result.pop_id};
    net_.NoteHoneypotContact(ctx, result.key, result.at);
  }
  if (cert_observer_) {
    for (const cert::Certificate& certificate : result.certs) {
      cert_observer_(certificate, result.key, result.at);
    }
  }
}

ServiceRecord Interrogator::BuildRecord(const simnet::L7Session& session,
                                        Timestamp t,
                                        std::optional<proto::Protocol> udp_hint,
                                        std::string_view sni_name) {
  InterrogationResult result;
  result.key = session.service.key;
  result.at = t;
  result.connected = true;
  // Warm-start replays never contact honeypots (those are injected later),
  // and the serial Interrogate path reports contact via ConnectL7 parity:
  // the honeypot flag rides on the session either way.
  result.honeypot = session.service.honeypot;
  ServiceRecord record =
      BuildRecordDetached(session, t, udp_hint, sni_name, result);
  result.record = record;
  CommitResult(result);
  return record;
}

ServiceRecord Interrogator::BuildRecordDetached(
    const simnet::L7Session& session, Timestamp t,
    std::optional<proto::Protocol> udp_hint, std::string_view sni_name,
    InterrogationResult& out) const {
  const simnet::SimService& svc = session.service;
  ServiceRecord record;
  record.key = svc.key;
  record.observed_at = t;

  const DetectionOutcome outcome =
      DetectProtocol(session, config_, udp_hint);
  record.protocol = outcome.protocol;
  record.raw_response = outcome.raw_response;
  switch (outcome.step) {
    case DetectionOutcome::Step::kServerBanner:
      record.detection = DetectionMethod::kServerBanner;
      break;
    case DetectionOutcome::Step::kIanaHandshake:
      record.detection = DetectionMethod::kIanaHandshake;
      break;
    case DetectionOutcome::Step::kBatteryHandshake:
      record.detection = DetectionMethod::kBatteryHandshake;
      break;
    case DetectionOutcome::Step::kTlsWrapped:
      record.detection = DetectionMethod::kTlsWrapped;
      break;
    case DetectionOutcome::Step::kNone:
      record.detection = DetectionMethod::kNone;
      break;
  }
  record.handshake_validated =
      record.detection != DetectionMethod::kNone &&
      record.protocol != proto::Protocol::kUnknown;

  if (!record.handshake_validated) {
    // Raw capture only; no protocol-specific extraction possible.
    return record;
  }

  // --- protocol-specific data collection -------------------------------------
  record.banner = proto::GenerateBanner(record.protocol, svc.seed);
  record.software = proto::GenerateSoftware(record.protocol, svc.seed);
  record.device = proto::GenerateDevice(record.protocol, svc.seed);
  ExtractProtocolFields(svc, record);

  if (record.protocol == proto::Protocol::kHttp ||
      record.protocol == proto::Protocol::kHttps) {
    if (svc.requires_sni && sni_name.empty()) {
      // Nameless scan of a name-addressed property: the frontend serves a
      // generic page (§4.3) — the real content needs the right Host/SNI.
      record.html_title = "Default web page";
      record.page_keywords = "default frontend";
    } else if (svc.requires_sni && !EqualsIgnoreCase(sni_name, svc.sni_name)) {
      // Wrong name: same generic page.
      record.html_title = "Default web page";
      record.page_keywords = "default frontend";
    } else {
      record.html_title = proto::GenerateHtmlTitle(svc.seed);
      record.page_keywords = proto::GeneratePageKeywords(svc.seed);
      if (!sni_name.empty()) record.sni_name = std::string(sni_name);
    }
  }

  // --- follow-up handshakes: TLS parameters and certificate ------------------
  const auto tls = proto::DeriveTls(record.protocol, svc.seed);
  if (tls.has_value()) {
    record.tls = true;
    record.tls_version = std::string(proto::ToString(tls->version));
    record.jarm = tls->Jarm();
    record.ja4s = tls->Ja4s();
    const cert::Certificate presented = cert::SynthesizeCertificate(
        tls->cert_seed, svc.requires_sni ? svc.sni_name : std::string_view{},
        Timestamp{0});
    record.cert_sha256 = presented.Sha256Hex();
    out.certs.push_back(presented);
  }

  return record;
}

}  // namespace censys::interrogate
