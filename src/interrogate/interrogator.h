// Phase-2 Service Interrogation (§4.2).
//
// Fetches candidates found during Phase-1 discovery, detects the L7
// protocol, completes the protocol handshake, performs follow-up handshakes
// (TLS parameters, JARM/JA4S, certificate collection), and emits a
// structured ServiceRecord for the processing pipeline.
#pragma once

#include <functional>
#include <optional>
#include <string_view>

#include "cert/x509.h"
#include "interrogate/detection.h"
#include "interrogate/record.h"
#include "simnet/internet.h"

namespace censys::interrogate {

class Interrogator {
 public:
  Interrogator(simnet::Internet& net, const simnet::ScannerProfile& profile,
               DetectorConfig config = DetectorConfig::CensysDefault())
      : net_(net), profile_(profile), config_(std::move(config)) {}

  // Interrogates one target. Returns nullopt when nothing answered (the
  // target is gone or invisible) — which the pipeline records as a failed
  // refresh. `sni_name` addresses a web property by name; `udp_hint` is the
  // UDP probe protocol from discovery.
  std::optional<ServiceRecord> Interrogate(
      ServiceKey key, Timestamp t, int pop_id,
      std::optional<proto::Protocol> udp_hint = std::nullopt,
      std::string_view sni_name = {});

  // Builds a record from an already-established session. Used by
  // Interrogate() and by the engine's equilibrium warm start, which
  // replays accumulated past observations without a live probe.
  ServiceRecord BuildRecord(const simnet::L7Session& session, Timestamp t,
                            std::optional<proto::Protocol> udp_hint,
                            std::string_view sni_name);

  std::uint64_t handshakes_completed() const { return handshakes_; }

  // Invoked with every certificate collected during a TLS follow-up
  // handshake; the engine feeds these to its certificate store (§4.4).
  using CertObserver =
      std::function<void(const cert::Certificate&, ServiceKey, Timestamp)>;
  void SetCertificateObserver(CertObserver observer) {
    cert_observer_ = std::move(observer);
  }

  const DetectorConfig& config() const { return config_; }

 private:
  simnet::Internet& net_;
  const simnet::ScannerProfile& profile_;
  DetectorConfig config_;
  CertObserver cert_observer_;
  std::uint64_t handshakes_ = 0;
};

}  // namespace censys::interrogate
