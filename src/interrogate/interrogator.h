// Phase-2 Service Interrogation (§4.2).
//
// Fetches candidates found during Phase-1 discovery, detects the L7
// protocol, completes the protocol handshake, performs follow-up handshakes
// (TLS parameters, JARM/JA4S, certificate collection), and emits a
// structured ServiceRecord for the processing pipeline.
//
// The staged tick pipeline splits interrogation in two: InterrogateDetached
// is const and side-effect-free (safe to fan out across executor threads),
// returning the record plus every deferred side effect; CommitResult applies
// those effects — handshake accounting, certificate observation, honeypot
// contact logging — and runs serially in candidate-sequence order so
// parallel and single-threaded runs produce identical journals.
#pragma once

#include <functional>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "cert/x509.h"
#include "core/metrics.h"
#include "interrogate/detection.h"
#include "interrogate/record.h"
#include "simnet/internet.h"

namespace censys::interrogate {

// Everything one detached interrogation produced: the record (nullopt when
// nothing answered) and the side effects to apply at commit time.
struct InterrogationResult {
  ServiceKey key;
  Timestamp at;
  int pop_id = 0;
  // An L7 session was established (counts as a completed handshake even
  // when protocol detection subsequently fails).
  bool connected = false;
  bool honeypot = false;
  std::optional<ServiceRecord> record;
  // Certificates presented during TLS follow-up handshakes.
  std::vector<cert::Certificate> certs;
};

class Interrogator {
 public:
  Interrogator(simnet::Internet& net, const simnet::ScannerProfile& profile,
               DetectorConfig config = DetectorConfig::CensysDefault())
      : net_(net), profile_(profile), config_(std::move(config)) {}

  // Interrogates one target. Returns nullopt when nothing answered (the
  // target is gone or invisible) — which the pipeline records as a failed
  // refresh. `sni_name` addresses a web property by name; `udp_hint` is the
  // UDP probe protocol from discovery. Serial convenience wrapper:
  // InterrogateDetached + CommitResult.
  std::optional<ServiceRecord> Interrogate(
      ServiceKey key, Timestamp t, int pop_id,
      std::optional<proto::Protocol> udp_hint = std::nullopt,
      std::string_view sni_name = {});

  // Pure interrogation: no mutation of the interrogator, the network, or
  // any observer. Thread-safe; this is what the engine fans out.
  InterrogationResult InterrogateDetached(
      ServiceKey key, Timestamp t, int pop_id,
      std::optional<proto::Protocol> udp_hint = std::nullopt,
      std::string_view sni_name = {}) const;

  // Applies a detached result's side effects. Must be called serially, in
  // candidate-sequence order.
  void CommitResult(const InterrogationResult& result);

  // Builds a record from an already-established session. Used by
  // Interrogate() and by the engine's equilibrium warm start, which
  // replays accumulated past observations without a live probe. Commits
  // side effects inline (serial callers only).
  ServiceRecord BuildRecord(const simnet::L7Session& session, Timestamp t,
                            std::optional<proto::Protocol> udp_hint,
                            std::string_view sni_name);

  std::uint64_t handshakes_completed() const { return handshakes_; }

  // Invoked with every certificate collected during a TLS follow-up
  // handshake; the engine feeds these to its certificate store (§4.4).
  using CertObserver =
      std::function<void(const cert::Certificate&, ServiceKey, Timestamp)>;
  void SetCertificateObserver(CertObserver observer) {
    cert_observer_ = std::move(observer);
  }

  // Registers censys.interrogate.* instruments. The latency histogram is
  // recorded from InterrogateDetached, so it must tolerate concurrent
  // observation (it does: atomics only).
  void BindMetrics(metrics::Registry* registry);

  const DetectorConfig& config() const { return config_; }

 private:
  // Record construction without side effects; fills `out.certs`.
  ServiceRecord BuildRecordDetached(const simnet::L7Session& session,
                                    Timestamp t,
                                    std::optional<proto::Protocol> udp_hint,
                                    std::string_view sni_name,
                                    InterrogationResult& out) const;

  simnet::Internet& net_;
  const simnet::ScannerProfile& profile_;
  DetectorConfig config_;
  CertObserver cert_observer_;
  std::uint64_t handshakes_ = 0;

  metrics::CounterHandle attempts_metric_;
  metrics::CounterHandle no_answer_metric_;
  metrics::CounterHandle handshakes_metric_;
  metrics::CounterHandle validated_metric_;
  metrics::CounterHandle unvalidated_metric_;
  metrics::HistogramHandle latency_metric_;
};

}  // namespace censys::interrogate
