// LZR-style L7 protocol detection (§4.2 "Protocol Detection").
//
// The algorithm, as the paper describes it: (1) listen for server-initiated
// communication and fingerprint it; (2) attempt the IANA-assigned protocol
// for the port; (3) try additional common handshakes (e.g. an HTTP GET) and
// fingerprint protocol-specific error responses; (4) repeat inside a TLS
// session if one can be established; (5) if data is received but cannot be
// fingerprinted, capture the raw response.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "proto/protocol.h"
#include "simnet/internet.h"

namespace censys::interrogate {

// Fingerprints a server-initiated banner or error blob to a protocol.
// Mirrors the pattern tables scanners actually key on (SSH version strings,
// SMTP/FTP numeric greetings, RFB, HTTP status lines, ...).
std::optional<proto::Protocol> FingerprintBanner(std::string_view data);

struct DetectionOutcome {
  proto::Protocol protocol = proto::Protocol::kUnknown;
  // Which step of the algorithm succeeded.
  enum class Step {
    kNone,
    kServerBanner,
    kIanaHandshake,
    kBatteryHandshake,
    kTlsWrapped,
  } step = Step::kNone;
  // Raw data captured when fingerprinting failed.
  std::string raw_response;
};

struct DetectorConfig {
  bool listen_for_banner = true;
  bool try_iana = true;
  // The common-handshake battery. Censys implements ~200 protocol scanners
  // and tries a battery of likely handshakes; competitors' detection is
  // modeled elsewhere (keyword/port labeling).
  bool try_battery = true;
  bool try_within_tls = true;
  // Protocols in the battery, tried in order.
  std::vector<proto::Protocol> battery;

  static DetectorConfig CensysDefault();
};

// Runs the detection algorithm against a live session's ground truth.
// `udp_hint` carries the protocol whose UDP probe elicited the L4 response.
DetectionOutcome DetectProtocol(const simnet::L7Session& session,
                                const DetectorConfig& config,
                                std::optional<proto::Protocol> udp_hint);

}  // namespace censys::interrogate
