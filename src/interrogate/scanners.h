// Per-protocol scanners (§4.2 "Data Collection").
//
// After detection identifies a service's L7 protocol, Censys completes the
// protocol handshake "using custom high-performance protocol
// implementations, similar to ZGrab" and extracts protocol-specific
// structured data. This registry is that layer: one extractor per
// protocol, each deriving the fields a real scanner would parse out of the
// handshake — SSH host keys and kex lists, HTTP headers, SMTP capability
// lists, SNMP sysDescr, Modbus device identification, S7 module IDs, and
// so on. All fields are deterministic functions of the service seed, so a
// service presents the same configuration on every visit until it changes.
#pragma once

#include <functional>
#include <span>
#include <string>

#include "interrogate/record.h"
#include "simnet/service.h"

namespace censys::interrogate {

// Populates `record.extra` (and nothing else) with protocol-specific
// fields for the detected protocol. No-op for kUnknown.
void ExtractProtocolFields(const simnet::SimService& service,
                           ServiceRecord& record);

// Protocols with a registered extractor (diagnostics/tests).
std::span<const proto::Protocol> ScannerCoverage();

}  // namespace censys::interrogate
