#include "interrogate/scanners.h"

#include <array>
#include <cstdio>

#include "core/rng.h"
#include "core/sha256.h"
#include "proto/banner.h"
#include "proto/tls.h"

namespace censys::interrogate {
namespace {

using proto::Protocol;

std::uint64_t Sub(std::uint64_t seed, std::uint64_t salt) {
  return SplitMix64(seed ^ SplitMix64(salt));
}

std::string Hex(std::uint64_t seed, std::uint64_t salt, int bytes) {
  Sha256 h;
  const std::uint64_t material[2] = {seed, salt};
  h.Update(material, sizeof(material));
  return ToHex(h.Finish()).substr(0, static_cast<std::size_t>(bytes) * 2);
}

std::string Num(std::uint64_t seed, std::uint64_t salt, std::uint64_t lo,
                std::uint64_t hi) {
  return std::to_string(lo + Sub(seed, salt) % (hi - lo + 1));
}

template <std::size_t N>
std::string_view Pick(std::uint64_t seed, std::uint64_t salt,
                      const std::array<std::string_view, N>& pool) {
  return pool[Sub(seed, salt) % N];
}

using Fields = std::map<std::string, std::string>;

// --- web -----------------------------------------------------------------------

void ScanHttp(const simnet::SimService& svc, Fields& f) {
  const std::uint64_t seed = svc.seed;
  const proto::SoftwareInfo sw = proto::GenerateSoftware(svc.protocol, seed);
  f["http.status_code"] = std::string(Pick<5>(
      seed, 101, {"200", "200", "301", "401", "403"}));
  f["http.headers.server"] = sw.product + "/" + sw.version;
  f["http.headers.content_type"] = std::string(Pick<3>(
      seed, 102, {"text/html", "text/html; charset=utf-8", "application/json"}));
  if (Sub(seed, 103) % 3 == 0) {
    f["http.headers.x_powered_by"] =
        std::string(Pick<3>(seed, 104, {"PHP/7.4.33", "PHP/8.1.12", "Express"}));
  }
  f["http.body_size"] = Num(seed, 105, 180, 48000);
  f["http.favicon_mmh3"] = Num(seed, 106, 0, 0xffffffff);
  if (Sub(seed, 107) % 4 == 0) f["http.headers.hsts"] = "max-age=31536000";
}

// --- remote access ---------------------------------------------------------------

void ScanSsh(const simnet::SimService& svc, Fields& f) {
  const std::uint64_t seed = svc.seed;
  // The SSH host key is the §7.2 pivot ("relationships ... via SSH
  // hostkey"): stable per host, shared across a host's SSH ports.
  f["ssh.hostkey_sha256"] = Hex(svc.key.ip.value(), 0x55AA, 32);
  f["ssh.hostkey_type"] = std::string(Pick<3>(
      seed, 111, {"ssh-ed25519", "rsa-sha2-512", "ecdsa-sha2-nistp256"}));
  f["ssh.kex"] = std::string(Pick<3>(
      seed, 112,
      {"curve25519-sha256", "diffie-hellman-group14-sha256",
       "ecdh-sha2-nistp256"}));
  f["ssh.auth_methods"] = Sub(seed, 113) % 5 == 0
                              ? "publickey"
                              : "publickey,password";
}

void ScanTelnet(const simnet::SimService& svc, Fields& f) {
  f["telnet.will_echo"] = Sub(svc.seed, 115) % 2 ? "true" : "false";
  f["telnet.login_prompt"] = proto::GenerateBanner(Protocol::kTelnet, svc.seed);
}

void ScanRdp(const simnet::SimService& svc, Fields& f) {
  const std::uint64_t seed = svc.seed;
  f["rdp.nla_required"] = Sub(seed, 117) % 4 != 0 ? "true" : "false";
  f["rdp.product_version"] = Num(seed, 118, 6, 10) + "." + Num(seed, 119, 0, 3);
  f["rdp.hostname"] = "WIN-" + Hex(seed, 120, 4);
}

void ScanVnc(const simnet::SimService& svc, Fields& f) {
  f["vnc.protocol_version"] = "RFB 003.008";
  f["vnc.auth_required"] = Sub(svc.seed, 122) % 8 != 0 ? "true" : "false";
}

// --- file transfer / shares --------------------------------------------------------

void ScanFtp(const simnet::SimService& svc, Fields& f) {
  const std::uint64_t seed = svc.seed;
  f["ftp.anonymous_allowed"] = Sub(seed, 125) % 12 == 0 ? "true" : "false";
  f["ftp.features"] = std::string(Pick<3>(
      seed, 126, {"EPSV,MDTM,SIZE", "EPSV,MDTM,SIZE,UTF8", "MDTM,SIZE"}));
  f["ftp.tls_supported"] = Sub(seed, 127) % 3 == 0 ? "true" : "false";
}

void ScanSmb(const simnet::SimService& svc, Fields& f) {
  const std::uint64_t seed = svc.seed;
  f["smb.dialect"] = std::string(Pick<4>(
      seed, 129, {"2.1", "3.0", "3.1.1", "1.0"}));
  f["smb.signing_required"] = Sub(seed, 130) % 3 != 0 ? "true" : "false";
  f["smb.netbios_name"] = "HOST-" + Hex(seed, 131, 3);
}

// --- mail -----------------------------------------------------------------------

void ScanSmtp(const simnet::SimService& svc, Fields& f) {
  const std::uint64_t seed = svc.seed;
  f["smtp.ehlo"] = "250-mail-" + Hex(seed, 134, 3);
  std::string caps = "PIPELINING,SIZE 35882577,8BITMIME";
  if (Sub(seed, 135) % 4 != 0) caps += ",STARTTLS";
  f["smtp.capabilities"] = caps;
  f["smtp.open_relay"] = Sub(seed, 136) % 64 == 0 ? "true" : "false";
}

void ScanPop3(const simnet::SimService& svc, Fields& f) {
  f["pop3.capabilities"] =
      Sub(svc.seed, 138) % 2 ? "TOP,UIDL,SASL,STLS" : "TOP,UIDL";
}

void ScanImap(const simnet::SimService& svc, Fields& f) {
  f["imap.capabilities"] = Sub(svc.seed, 140) % 2
                               ? "IMAP4rev1 IDLE NAMESPACE STARTTLS"
                               : "IMAP4rev1 IDLE";
}

// --- naming, time, management ------------------------------------------------------

void ScanDns(const simnet::SimService& svc, Fields& f) {
  const std::uint64_t seed = svc.seed;
  // Open resolvers are a tracked exposure class.
  f["dns.recursion_available"] = Sub(seed, 143) % 3 == 0 ? "true" : "false";
  f["dns.server_version"] =
      proto::GenerateSoftware(Protocol::kDns, seed).version;
  f["dns.dnssec"] = Sub(seed, 144) % 4 == 0 ? "true" : "false";
}

void ScanNtp(const simnet::SimService& svc, Fields& f) {
  f["ntp.stratum"] = Num(svc.seed, 146, 1, 5);
  f["ntp.monlist_enabled"] = Sub(svc.seed, 147) % 32 == 0 ? "true" : "false";
}

void ScanSnmp(const simnet::SimService& svc, Fields& f) {
  const std::uint64_t seed = svc.seed;
  const proto::DeviceIdentity dev =
      proto::GenerateDevice(Protocol::kModbus, seed);  // embedded-ish pool
  f["snmp.version"] = std::string(Pick<3>(seed, 149, {"2c", "2c", "3"}));
  f["snmp.community"] = Sub(seed, 150) % 5 == 0 ? "public" : "(authenticated)";
  f["snmp.sysdescr"] = dev.manufacturer + " " + dev.model + " SNMP Agent";
  f["snmp.uptime_days"] = Num(seed, 151, 0, 900);
}

void ScanLdap(const simnet::SimService& svc, Fields& f) {
  f["ldap.naming_context"] = "dc=corp" + Num(svc.seed, 153, 1, 999) +
                             ",dc=example,dc=com";
  f["ldap.anonymous_bind"] = Sub(svc.seed, 154) % 6 == 0 ? "true" : "false";
}

void ScanSip(const simnet::SimService& svc, Fields& f) {
  f["sip.user_agent"] = std::string(Pick<3>(
      svc.seed, 156, {"Asterisk PBX 16.8", "FreeSWITCH 1.10", "Kamailio 5.5"}));
  f["sip.methods"] = "INVITE,ACK,BYE,CANCEL,OPTIONS,REGISTER";
}

void ScanUpnp(const simnet::SimService& svc, Fields& f) {
  f["upnp.server"] = std::string(Pick<2>(
      svc.seed, 158, {"Linux/3.x UPnP/1.0 MiniUPnPd/2.1", "libupnp/1.6.19"}));
  f["upnp.device_type"] = "InternetGatewayDevice:1";
}

// --- databases and caches ------------------------------------------------------------

void ScanMysql(const simnet::SimService& svc, Fields& f) {
  const std::uint64_t seed = svc.seed;
  f["mysql.server_version"] =
      proto::GenerateSoftware(Protocol::kMysql, seed).version;
  f["mysql.auth_plugin"] = std::string(Pick<2>(
      seed, 161, {"mysql_native_password", "caching_sha2_password"}));
  f["mysql.tls_supported"] = Sub(seed, 162) % 2 ? "true" : "false";
}

void ScanPostgres(const simnet::SimService& svc, Fields& f) {
  f["postgres.ssl_supported"] = Sub(svc.seed, 164) % 3 != 0 ? "true" : "false";
  f["postgres.auth"] = std::string(Pick<3>(
      svc.seed, 165, {"md5", "scram-sha-256", "trust"}));
}

void ScanRedis(const simnet::SimService& svc, Fields& f) {
  const std::uint64_t seed = svc.seed;
  const bool open = Sub(seed, 167) % 10 == 0;  // unauthenticated exposure
  f["redis.auth_required"] = open ? "false" : "true";
  if (open) {
    f["redis.version"] = std::string(Pick<3>(
        seed, 168, {"5.0.7", "6.2.6", "7.0.11"}));
    f["redis.keyspace_keys"] = Num(seed, 169, 0, 1000000);
  }
}

void ScanMongo(const simnet::SimService& svc, Fields& f) {
  f["mongodb.auth_required"] = Sub(svc.seed, 171) % 8 != 0 ? "true" : "false";
  f["mongodb.version"] = std::string(Pick<3>(
      svc.seed, 172, {"4.4.18", "5.0.14", "6.0.3"}));
}

void ScanMemcached(const simnet::SimService& svc, Fields& f) {
  f["memcached.version"] = std::string(Pick<2>(
      svc.seed, 174, {"1.6.9", "1.6.17"}));
  f["memcached.curr_items"] = Num(svc.seed, 175, 0, 500000);
}

void ScanElasticsearch(const simnet::SimService& svc, Fields& f) {
  f["elasticsearch.cluster_name"] = "es-" + Hex(svc.seed, 177, 3);
  f["elasticsearch.version"] = std::string(Pick<3>(
      svc.seed, 178, {"6.8.23", "7.17.9", "8.6.2"}));
  f["elasticsearch.open_indices"] = Num(svc.seed, 179, 1, 400);
}

void ScanMqtt(const simnet::SimService& svc, Fields& f) {
  f["mqtt.anonymous_allowed"] = Sub(svc.seed, 181) % 5 == 0 ? "true" : "false";
  f["mqtt.protocol_level"] = Sub(svc.seed, 182) % 3 ? "4" : "5";
}

// --- industrial control systems ------------------------------------------------------
// Each ICS extractor surfaces the identification data its real handshake
// exposes — the detail Table 4's "validated" column depends on.

void IcsCommon(const simnet::SimService& svc, Fields& f,
               std::string_view prefix) {
  const proto::DeviceIdentity dev =
      proto::GenerateDevice(svc.protocol, svc.seed);
  f[std::string(prefix) + ".vendor"] = dev.manufacturer;
  f[std::string(prefix) + ".product"] = dev.model;
  f[std::string(prefix) + ".firmware"] =
      proto::GenerateSoftware(svc.protocol, svc.seed).version;
}

void ScanModbus(const simnet::SimService& svc, Fields& f) {
  IcsCommon(svc, f, "modbus");
  f["modbus.unit_id"] = Num(svc.seed, 185, 1, 247);
  f["modbus.function_exceptions"] =
      Sub(svc.seed, 186) % 2 ? "illegal-data-address" : "none";
}

void ScanS7(const simnet::SimService& svc, Fields& f) {
  IcsCommon(svc, f, "s7");
  f["s7.module"] = "6ES7 " + Num(svc.seed, 188, 100, 999) + "-" +
                   Hex(svc.seed, 189, 2);
  f["s7.rack"] = Num(svc.seed, 190, 0, 2);
  f["s7.slot"] = Num(svc.seed, 191, 0, 4);
  f["s7.plant_id"] = Sub(svc.seed, 192) % 3 == 0
                         ? "PLANT-" + Hex(svc.seed, 193, 2)
                         : "";
}

void ScanBacnet(const simnet::SimService& svc, Fields& f) {
  IcsCommon(svc, f, "bacnet");
  f["bacnet.instance_number"] = Num(svc.seed, 195, 1, 4194302);
  f["bacnet.object_count"] = Num(svc.seed, 196, 4, 600);
  f["bacnet.location"] = std::string(Pick<3>(
      svc.seed, 197, {"Mechanical Room", "Roof", "Floor 2"}));
}

void ScanAtg(const simnet::SimService& svc, Fields& f) {
  IcsCommon(svc, f, "atg");
  f["atg.station_name"] = "FUEL STOP " + Num(svc.seed, 199, 1, 9999);
  f["atg.tank_count"] = Num(svc.seed, 200, 1, 8);
  f["atg.product_1"] = std::string(Pick<3>(
      svc.seed, 201, {"REGULAR", "PREMIUM", "DIESEL"}));
}

void ScanFox(const simnet::SimService& svc, Fields& f) {
  IcsCommon(svc, f, "fox");
  f["fox.station_name"] = "JACE-" + Hex(svc.seed, 203, 2);
  f["fox.vm_version"] = std::string(Pick<2>(
      svc.seed, 204, {"Java HotSpot 1.8", "OpenJDK 11"}));
}

void ScanDnp3(const simnet::SimService& svc, Fields& f) {
  IcsCommon(svc, f, "dnp3");
  f["dnp3.source_address"] = Num(svc.seed, 206, 1, 65519);
}

void ScanEip(const simnet::SimService& svc, Fields& f) {
  IcsCommon(svc, f, "eip");
  f["eip.product_code"] = Num(svc.seed, 208, 1, 400);
  f["eip.serial"] = Hex(svc.seed, 209, 4);
}

void ScanGenericIcs(const simnet::SimService& svc, Fields& f) {
  IcsCommon(svc, f, "ics");
}

// --- registry ------------------------------------------------------------------------

using Extractor = void (*)(const simnet::SimService&, Fields&);

struct Entry {
  Protocol protocol;
  Extractor extract;
};

constexpr std::array<Entry, 42> kRegistry = {{
    {Protocol::kHttp, ScanHttp},
    {Protocol::kHttps, ScanHttp},
    {Protocol::kSsh, ScanSsh},
    {Protocol::kTelnet, ScanTelnet},
    {Protocol::kRdp, ScanRdp},
    {Protocol::kVnc, ScanVnc},
    {Protocol::kFtp, ScanFtp},
    {Protocol::kSmb, ScanSmb},
    {Protocol::kSmtp, ScanSmtp},
    {Protocol::kPop3, ScanPop3},
    {Protocol::kImap, ScanImap},
    {Protocol::kDns, ScanDns},
    {Protocol::kNtp, ScanNtp},
    {Protocol::kSnmp, ScanSnmp},
    {Protocol::kLdap, ScanLdap},
    {Protocol::kSip, ScanSip},
    {Protocol::kUpnp, ScanUpnp},
    {Protocol::kMysql, ScanMysql},
    {Protocol::kPostgres, ScanPostgres},
    {Protocol::kRedis, ScanRedis},
    {Protocol::kMongodb, ScanMongo},
    {Protocol::kMemcached, ScanMemcached},
    {Protocol::kElasticsearch, ScanElasticsearch},
    {Protocol::kMqtt, ScanMqtt},
    {Protocol::kModbus, ScanModbus},
    {Protocol::kS7, ScanS7},
    {Protocol::kBacnet, ScanBacnet},
    {Protocol::kAtg, ScanAtg},
    {Protocol::kFox, ScanFox},
    {Protocol::kDnp3, ScanDnp3},
    {Protocol::kEip, ScanEip},
    {Protocol::kCodesys, ScanGenericIcs},
    {Protocol::kCimonPlc, ScanGenericIcs},
    {Protocol::kCmore, ScanGenericIcs},
    {Protocol::kDigi, ScanGenericIcs},
    {Protocol::kFins, ScanGenericIcs},
    {Protocol::kGeSrtp, ScanGenericIcs},
    {Protocol::kHart, ScanGenericIcs},
    {Protocol::kIec60870, ScanGenericIcs},
    {Protocol::kOpcUa, ScanGenericIcs},
    {Protocol::kPcworx, ScanGenericIcs},
    {Protocol::kWdbrpc, ScanGenericIcs},
}};

}  // namespace

void ExtractProtocolFields(const simnet::SimService& service,
                           ServiceRecord& record) {
  for (const Entry& entry : kRegistry) {
    if (entry.protocol == record.protocol) {
      entry.extract(service, record.extra);
      return;
    }
  }
}

std::span<const proto::Protocol> ScannerCoverage() {
  static const auto* coverage = [] {
    auto* list = new std::vector<proto::Protocol>();
    for (const Entry& entry : kRegistry) list->push_back(entry.protocol);
    return list;
  }();
  return std::span<const proto::Protocol>(*coverage);
}

}  // namespace censys::interrogate
