#include "interrogate/detection.h"

#include "core/strings.h"
#include "proto/banner.h"
#include "proto/tls.h"

namespace censys::interrogate {

std::optional<proto::Protocol> FingerprintBanner(std::string_view data) {
  if (data.empty()) return std::nullopt;
  if (StartsWith(data, "SSH-")) return proto::Protocol::kSsh;
  if (StartsWith(data, "RFB ")) return proto::Protocol::kVnc;
  if (StartsWith(data, "HTTP/")) return proto::Protocol::kHttp;
  if (StartsWith(data, "+OK")) return proto::Protocol::kPop3;
  if (StartsWith(data, "* OK")) return proto::Protocol::kImap;
  if (StartsWith(data, "-NOAUTH") || StartsWith(data, "-ERR"))
    return proto::Protocol::kRedis;
  if (StartsWith(data, "220 ")) {
    // FTP and SMTP share the 220 greeting; disambiguate on content.
    if (ContainsIgnoreCase(data, "smtp") || ContainsIgnoreCase(data, "esmtp") ||
        ContainsIgnoreCase(data, "mail"))
      return proto::Protocol::kSmtp;
    return proto::Protocol::kFtp;
  }
  if (StartsWith(data, "500 ") || StartsWith(data, "550 "))
    return proto::Protocol::kSmtp;
  if (ContainsIgnoreCase(data, "login:"))
    return proto::Protocol::kTelnet;
  if (data.find("MariaDB") != std::string_view::npos ||
      EndsWith(data, "-log"))
    return proto::Protocol::kMysql;
  // ICS devices announce manufacturer identity blocks.
  for (proto::Protocol p : proto::IcsProtocols()) {
    const proto::DeviceIdentity any = proto::GenerateDevice(p, 0);
    if (!any.manufacturer.empty() &&
        ContainsIgnoreCase(data, any.manufacturer))
      return p;
  }
  return std::nullopt;
}

DetectorConfig DetectorConfig::CensysDefault() {
  DetectorConfig cfg;
  // The battery: the generic handshakes LZR sends plus every ICS handshake
  // Censys implements (the paper: "we have implemented approximately 200
  // protocol scanners, ranging from IETF-ratified protocols ... to
  // security-critical ICS protocols").
  cfg.battery = {proto::Protocol::kHttp, proto::Protocol::kTelnet,
                 proto::Protocol::kRdp,  proto::Protocol::kSmb,
                 proto::Protocol::kVnc,  proto::Protocol::kRedis,
                 proto::Protocol::kLdap, proto::Protocol::kPostgres,
                 proto::Protocol::kMqtt, proto::Protocol::kElasticsearch,
                 proto::Protocol::kMongodb};
  for (proto::Protocol p : proto::IcsProtocols()) cfg.battery.push_back(p);
  return cfg;
}

namespace {

// Attempting a protocol handshake against the session's ground truth:
// succeeds iff the service actually speaks that protocol. A failed attempt
// may still elicit an identifiable error (LZR's key observation).
bool TryHandshake(const simnet::SimService& service, proto::Protocol guess) {
  if (service.pseudo) {
    // Middleboxes complete any TCP handshake-ish exchange with the same
    // canned HTTP-ish payload; only an HTTP attempt "succeeds".
    return guess == proto::Protocol::kHttp;
  }
  if (service.protocol == guess) return true;
  // HTTPS is HTTP within TLS: an HTTP attempt inside a TLS session against
  // an HTTPS service succeeds (handled by the TLS step below); a plain HTTP
  // attempt against HTTPS fails.
  return false;
}

}  // namespace

DetectionOutcome DetectProtocol(const simnet::L7Session& session,
                                const DetectorConfig& config,
                                std::optional<proto::Protocol> udp_hint) {
  DetectionOutcome out;
  const simnet::SimService& svc = session.service;

  // UDP: the response already came from a protocol-specific probe.
  if (svc.key.transport == Transport::kUdp && udp_hint.has_value()) {
    if (TryHandshake(svc, *udp_hint)) {
      out.protocol = *udp_hint;
      out.step = DetectionOutcome::Step::kIanaHandshake;
      return out;
    }
  }

  // Step 1: server-initiated communication.
  if (config.listen_for_banner && !session.server_first_banner.empty()) {
    if (const auto p = FingerprintBanner(session.server_first_banner)) {
      out.protocol = *p;
      out.step = DetectionOutcome::Step::kServerBanner;
      return out;
    }
    // Data arrived but was not fingerprintable; keep it as raw capture
    // unless a later step identifies the protocol.
    out.raw_response = session.server_first_banner;
  }

  // Step 2: IANA-assigned protocol for the port.
  if (config.try_iana) {
    for (proto::Protocol p :
         proto::AssignedToPort(svc.key.port, svc.key.transport)) {
      if (TryHandshake(svc, p)) {
        out.protocol = p;
        out.step = DetectionOutcome::Step::kIanaHandshake;
        return out;
      }
    }
  }

  // Step 3: common handshake battery; a wrong-protocol attempt may elicit
  // an identifiable error.
  if (config.try_battery) {
    for (proto::Protocol probe : config.battery) {
      if (TryHandshake(svc, probe)) {
        out.protocol = probe;
        out.step = DetectionOutcome::Step::kBatteryHandshake;
        return out;
      }
    }
    // Fingerprint the error elicited by an HTTP probe (LZR: an SMTP error
    // in response to an HTTP request identifies SMTP).
    const std::string error = proto::WrongProtocolResponse(
        svc.protocol, proto::Protocol::kHttp, svc.seed);
    if (!error.empty()) {
      if (const auto p = FingerprintBanner(error)) {
        out.protocol = *p;
        out.step = DetectionOutcome::Step::kBatteryHandshake;
        return out;
      }
      out.raw_response = error;
    }
  }

  // Step 4: retry within TLS if the service supports it.
  if (config.try_within_tls) {
    const auto tls = proto::DeriveTls(svc.protocol, svc.seed);
    if (tls.has_value()) {
      if (svc.protocol == proto::Protocol::kHttps) {
        out.protocol = proto::Protocol::kHttps;
        out.step = DetectionOutcome::Step::kTlsWrapped;
        return out;
      }
      // TLS-wrapped variants of protocols in the battery (IMAPS, LDAPS...).
      for (proto::Protocol probe : config.battery) {
        if (svc.protocol == probe) {
          out.protocol = probe;
          out.step = DetectionOutcome::Step::kTlsWrapped;
          return out;
        }
      }
    }
  }

  // Step 5: unidentified; out.raw_response carries whatever was captured.
  return out;
}

}  // namespace censys::interrogate
