#include "query/columnar.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "core/strings.h"
#include "core/trace.h"
#include "storage/segment_file.h"
#include "storage/serialize.h"

namespace censys::query {
namespace {

constexpr std::string_view kMagic = "CSG1";

// Streams one column's (row, value) pairs — rows arriving in ascending
// order — into dictionary ids and maximal runs, padding uncovered rows
// with the absent id 0.
struct ColumnBuilder {
  std::vector<std::string> dict;
  std::unordered_map<std::string, std::uint32_t> ids;  // value -> 1-based id
  std::vector<ColumnSegment::Run> runs;
  std::uint32_t filled = 0;

  void Extend(std::uint32_t id, std::uint32_t length) {
    if (length == 0) return;
    if (!runs.empty() && runs.back().value == id) {
      runs.back().length += length;
    } else {
      runs.push_back({id, length});
    }
    filled += length;
  }

  void Append(std::uint32_t row, const std::string& value) {
    if (row > filled) Extend(0, row - filled);
    auto [it, inserted] =
        ids.emplace(value, static_cast<std::uint32_t>(dict.size()) + 1);
    if (inserted) dict.push_back(value);
    Extend(it->second, 1);
  }
};

void AccumulateColumn(const ColumnSegment::Column& column,
                      std::map<std::string, std::uint64_t>& groups) {
  for (const ColumnSegment::Run& run : column.runs) {
    if (run.value != 0) groups[column.dict[run.value - 1]] += run.length;
  }
}

}  // namespace

std::string ColumnSegment::Encode() const {
  std::string out;
  out.append(kMagic);
  storage::PutVarint(out, static_cast<std::uint64_t>(day));
  storage::PutVarint(out, row_ids.size());
  for (const std::string& id : row_ids) storage::PutLengthPrefixed(out, id);
  storage::PutVarint(out, columns.size());
  for (const Column& column : columns) {
    storage::PutLengthPrefixed(out, column.field);
    storage::PutVarint(out, column.dict.size());
    for (const std::string& value : column.dict) {
      storage::PutLengthPrefixed(out, value);
    }
    storage::PutVarint(out, column.runs.size());
    for (const Run& run : column.runs) {
      storage::PutVarint(out, run.value);
      storage::PutVarint(out, run.length);
    }
  }
  return out;
}

std::optional<ColumnSegment> ColumnSegment::Decode(std::string_view payload) {
  if (payload.substr(0, kMagic.size()) != kMagic) return std::nullopt;
  std::size_t pos = kMagic.size();

  ColumnSegment segment;
  const auto day = storage::GetVarint(payload, &pos);
  if (!day.has_value()) return std::nullopt;
  segment.day = static_cast<std::int64_t>(*day);

  const auto row_count = storage::GetVarint(payload, &pos);
  if (!row_count.has_value() || *row_count > payload.size()) {
    return std::nullopt;
  }
  segment.row_ids.reserve(*row_count);
  for (std::uint64_t i = 0; i < *row_count; ++i) {
    const auto id = storage::GetLengthPrefixed(payload, &pos);
    if (!id.has_value()) return std::nullopt;
    if (!segment.row_ids.empty() && !(segment.row_ids.back() < *id)) {
      return std::nullopt;  // rows must be strictly ascending
    }
    segment.row_ids.emplace_back(*id);
  }

  const auto column_count = storage::GetVarint(payload, &pos);
  if (!column_count.has_value() || *column_count > payload.size()) {
    return std::nullopt;
  }
  segment.columns.reserve(*column_count);
  for (std::uint64_t c = 0; c < *column_count; ++c) {
    Column column;
    const auto field = storage::GetLengthPrefixed(payload, &pos);
    if (!field.has_value()) return std::nullopt;
    column.field = std::string(*field);
    if (!segment.columns.empty() &&
        !(segment.columns.back().field < column.field)) {
      return std::nullopt;  // columns must be strictly ascending
    }
    const auto dict_size = storage::GetVarint(payload, &pos);
    if (!dict_size.has_value() || *dict_size > payload.size()) {
      return std::nullopt;
    }
    column.dict.reserve(*dict_size);
    for (std::uint64_t i = 0; i < *dict_size; ++i) {
      const auto value = storage::GetLengthPrefixed(payload, &pos);
      if (!value.has_value()) return std::nullopt;
      column.dict.emplace_back(*value);
    }
    const auto run_count = storage::GetVarint(payload, &pos);
    if (!run_count.has_value() || *run_count > payload.size()) {
      return std::nullopt;
    }
    column.runs.reserve(*run_count);
    std::uint64_t covered = 0;
    for (std::uint64_t i = 0; i < *run_count; ++i) {
      const auto value = storage::GetVarint(payload, &pos);
      const auto length = storage::GetVarint(payload, &pos);
      if (!value.has_value() || !length.has_value()) return std::nullopt;
      if (*value > column.dict.size() || *length == 0) return std::nullopt;
      covered += *length;
      column.runs.push_back({static_cast<std::uint32_t>(*value),
                             static_cast<std::uint32_t>(*length)});
    }
    if (covered != *row_count) return std::nullopt;  // must tile all rows
    segment.columns.push_back(std::move(column));
  }
  if (pos != payload.size()) return std::nullopt;  // trailing garbage
  return segment;
}

ColumnSegment BuildSegment(const storage::EventJournal& journal,
                           std::int64_t day) {
  // Snapshot the universe (non-empty entities, like the search index),
  // then sort rows so equal states encode byte-identically regardless of
  // journal shard iteration order.
  std::vector<std::pair<std::string, storage::FieldMap>> rows;
  journal.ForEachEntity(
      [&](std::string_view entity, const storage::FieldMap& fields) {
        if (fields.empty()) return;
        rows.emplace_back(std::string(entity), fields);
      });
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  ColumnSegment segment;
  segment.day = day;
  segment.row_ids.reserve(rows.size());
  std::map<std::string, ColumnBuilder> builders;
  for (std::uint32_t row = 0; row < rows.size(); ++row) {
    segment.row_ids.push_back(rows[row].first);
    for (const auto& [field, value] : rows[row].second) {
      builders[field].Append(row, value);
    }
  }
  segment.columns.reserve(builders.size());
  for (auto& [field, builder] : builders) {
    builder.Extend(0, static_cast<std::uint32_t>(rows.size()) -
                          builder.filled);  // pad the tail
    ColumnSegment::Column column;
    column.field = field;
    column.dict = std::move(builder.dict);
    column.runs = std::move(builder.runs);
    segment.columns.push_back(std::move(column));
  }
  return segment;
}

bool AnalyticsTier::BuildDay(std::int64_t day, std::string* error) {
  TRACE_SPAN("query", "columnar.build");
  auto segment = std::make_shared<const ColumnSegment>(
      BuildSegment(journal_, day));
  const std::string encoded = segment->Encode();
  if (!options_.dir.empty()) {
    if (!storage::WriteSegmentFile(SegmentPath(day), encoded, error)) {
      return false;
    }
  }
  {
    const core::MutexLock lock(mu_);
    segments_[day] = std::move(segment);
  }
  built_metric_.Add();
  bytes_metric_.Add(encoded.size());
  return true;
}

AnalyticsTier::SegmentPtr AnalyticsTier::FindSegment(std::int64_t day) const {
  {
    const core::ReaderLock lock(mu_);
    // Newest cached day <= the requested one.
    auto it = segments_.upper_bound(day);
    if (it != segments_.begin()) return std::prev(it)->second;
  }
  if (options_.dir.empty()) return nullptr;
  const std::string path = SegmentPath(day);
  if (!storage::SegmentFileExists(path)) return nullptr;
  std::string error;
  const auto payload = storage::ReadSegmentFile(path, &error);
  if (!payload.has_value()) {
    corrupt_metric_.Add();
    return nullptr;
  }
  auto decoded = ColumnSegment::Decode(*payload);
  if (!decoded.has_value()) {
    corrupt_metric_.Add();
    return nullptr;
  }
  auto segment = std::make_shared<const ColumnSegment>(std::move(*decoded));
  const core::MutexLock lock(mu_);
  segments_[day] = segment;
  return segment;
}

AnalyticsTier::Aggregate AnalyticsTier::GroupCount(
    std::int64_t day, std::string_view field) const {
  TRACE_SPAN("query", "columnar.scan");
  scans_metric_.Add();
  const SegmentPtr segment = FindSegment(day);
  if (segment == nullptr) {
    fallback_metric_.Add();
    return WalkJournal(field);
  }
  Aggregate out;
  out.from_segment = true;
  out.day = segment->day;
  out.rows = segment->row_ids.size();
  scan_rows_metric_.Add(out.rows);
  const auto it = std::lower_bound(
      segment->columns.begin(), segment->columns.end(), field,
      [](const ColumnSegment::Column& c, std::string_view f) {
        return c.field < f;
      });
  if (it != segment->columns.end() && it->field == field) {
    AccumulateColumn(*it, out.groups);
  }
  return out;
}

AnalyticsTier::Aggregate AnalyticsTier::GroupCountSuffix(
    std::int64_t day, std::string_view suffix) const {
  TRACE_SPAN("query", "columnar.scan");
  scans_metric_.Add();
  const SegmentPtr segment = FindSegment(day);
  if (segment == nullptr) {
    fallback_metric_.Add();
    return WalkJournalSuffix(suffix);
  }
  Aggregate out;
  out.from_segment = true;
  out.day = segment->day;
  out.rows = segment->row_ids.size();
  scan_rows_metric_.Add(out.rows);
  for (const ColumnSegment::Column& column : segment->columns) {
    if (EndsWith(column.field, suffix)) AccumulateColumn(column, out.groups);
  }
  return out;
}

AnalyticsTier::Aggregate AnalyticsTier::WalkJournal(
    std::string_view field) const {
  Aggregate out;
  journal_.ForEachEntity(
      [&](std::string_view /*entity*/, const storage::FieldMap& fields) {
        if (fields.empty()) return;
        ++out.rows;
        const auto it = fields.find(std::string(field));
        if (it != fields.end()) ++out.groups[it->second];
      });
  return out;
}

AnalyticsTier::Aggregate AnalyticsTier::WalkJournalSuffix(
    std::string_view suffix) const {
  Aggregate out;
  journal_.ForEachEntity(
      [&](std::string_view /*entity*/, const storage::FieldMap& fields) {
        if (fields.empty()) return;
        ++out.rows;
        for (const auto& [field, value] : fields) {
          if (EndsWith(field, suffix)) ++out.groups[value];
        }
      });
  return out;
}

std::vector<std::int64_t> AnalyticsTier::CachedDays() const {
  const core::ReaderLock lock(mu_);
  std::vector<std::int64_t> days;
  days.reserve(segments_.size());
  for (const auto& [day, segment] : segments_) days.push_back(day);
  return days;
}

std::string AnalyticsTier::SegmentPath(std::int64_t day) const {
  return options_.dir + "/seg-" + std::to_string(day) + ".col";
}

void AnalyticsTier::BindMetrics(metrics::Registry* registry) {
  built_metric_ =
      metrics::BindCounter(registry, "censys.query.segments_built");
  bytes_metric_ = metrics::BindCounter(registry, "censys.query.segment_bytes");
  scans_metric_ = metrics::BindCounter(registry, "censys.query.scans");
  scan_rows_metric_ = metrics::BindCounter(registry, "censys.query.scan_rows");
  corrupt_metric_ =
      metrics::BindCounter(registry, "censys.query.segment_corrupt");
  fallback_metric_ =
      metrics::BindCounter(registry, "censys.query.fallback_walks");
}

}  // namespace censys::query
