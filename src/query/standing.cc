#include "query/standing.h"

#include <utility>

#include "core/trace.h"
#include "search/match.h"

namespace censys::query {

std::string_view ToString(MatchEvent::Kind kind) {
  switch (kind) {
    case MatchEvent::Kind::kEnter: return "enter";
    case MatchEvent::Kind::kLeave: return "leave";
  }
  return "?";
}

std::string MatchEvent::ToString() const {
  std::string out = "q" + std::to_string(query);
  out += kind == Kind::kEnter ? " + " : " - ";
  out += entity_id;
  out += " #" + std::to_string(seqno);
  out += " @" + std::to_string(at.minutes);
  return out;
}

std::optional<StandingQueryId> StandingQueryRegistry::Register(
    std::string_view name, std::string_view expression, std::string* error,
    const storage::EventJournal* backfill, Callback callback) {
  std::string local_error;
  const auto parsed = search::ParseQuery(
      expression, error != nullptr ? error : &local_error);
  if (!parsed.has_value()) return std::nullopt;

  Entry entry;
  entry.name = std::string(name);
  entry.expression = std::string(expression);
  entry.compiled = *parsed;
  search::CollectQueryFields(entry.compiled, &entry.fields, &entry.any_field);
  if (callback) {
    entry.callback = std::make_shared<const Callback>(std::move(callback));
  }

  const core::MutexLock lock(mu_);
  const StandingQueryId id = next_id_++;
  if (backfill != nullptr) {
    // Seed silently under the lock: a commit racing this registration is
    // either fully in the seed (it landed first) or fully delivered as
    // events (OnCommit serialized after us) — never half of each.
    backfill->ForEachEntity(
        [&](std::string_view entity, const storage::FieldMap& fields) {
          if (fields.empty()) return;
          known_.insert(std::string(entity));
          if (search::MatchesDocument(entry.compiled, fields)) {
            entry.matched.insert(std::string(entity));
          }
        });
  }
  for (const std::string& field : entry.fields) field_index_[field].insert(id);
  if (entry.any_field) any_field_.insert(id);
  entries_.emplace(id, std::move(entry));
  registered_metric_.Set(static_cast<std::int64_t>(entries_.size()));
  return id;
}

bool StandingQueryRegistry::Unregister(StandingQueryId id) {
  const core::MutexLock lock(mu_);
  const auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  for (const std::string& field : it->second.fields) {
    const auto fi = field_index_.find(field);
    if (fi != field_index_.end()) {
      fi->second.erase(id);
      if (fi->second.empty()) field_index_.erase(fi);
    }
  }
  any_field_.erase(id);
  entries_.erase(it);
  // With no queries left the universe no longer needs tracking; the next
  // registration reseeds it (backfill) or reconverges lazily.
  if (entries_.empty()) known_.clear();
  registered_metric_.Set(static_cast<std::int64_t>(entries_.size()));
  return true;
}

bool StandingQueryRegistry::EvaluateLocked(
    StandingQueryId id, Entry& entry, const storage::AppliedEvent& ev,
    bool now_present,
    std::vector<std::pair<std::shared_ptr<const Callback>, MatchEvent>>*
        fired) {
  bool ran = false;
  bool matches = false;
  if (now_present) {
    matches = search::MatchesDocument(entry.compiled, *ev.post_state);
    ran = true;
  }
  const std::string entity(ev.entity_id);
  const bool had = entry.matched.contains(entity);
  if (matches == had) return ran;

  MatchEvent event;
  event.query = id;
  event.kind = matches ? MatchEvent::Kind::kEnter : MatchEvent::Kind::kLeave;
  event.entity_id = entity;
  event.seqno = ev.seqno;
  event.at = ev.at;
  if (matches) {
    entry.matched.insert(entity);
  } else {
    entry.matched.erase(entity);
  }
  if (entry.callback != nullptr) fired->emplace_back(entry.callback, event);
  entry.pending.push_back(std::move(event));
  if (entry.pending.size() > options_.max_pending) {
    entry.pending.pop_front();
    ++entry.dropped;
    dropped_metric_.Add();
  }
  events_metric_.Add();
  return ran;
}

void StandingQueryRegistry::OnCommit(
    const std::vector<storage::AppliedEvent>& batch) {
  std::vector<std::pair<std::shared_ptr<const Callback>, MatchEvent>> fired;
  {
    const core::MutexLock lock(mu_);
    if (entries_.empty()) return;
    TRACE_SPAN("query", "standing.commit");
    const metrics::ScopedTimer timer(eval_us_metric_);
    std::uint64_t evals = 0;
    for (const storage::AppliedEvent& ev : batch) {
      const std::string entity(ev.entity_id);
      const bool now_present =
          ev.post_state != nullptr && !ev.post_state->empty();
      const bool was_known = known_.contains(entity);
      if (!was_known || !now_present) {
        // Universe membership may be changing: every query's NOT (and
        // plain) status can flip, so the field shortlist is unsound here
        // — evaluate all of them.
        for (auto& [id, entry] : entries_) {
          if (EvaluateLocked(id, entry, ev, now_present, &fired)) ++evals;
        }
      } else {
        // Steady state: only queries constraining a touched field (plus
        // any-field queries) can change status.
        std::set<StandingQueryId> affected = any_field_;
        if (ev.delta != nullptr) {
          for (const storage::FieldOp& op : ev.delta->ops) {
            const auto fi = field_index_.find(op.key);
            if (fi != field_index_.end()) {
              affected.insert(fi->second.begin(), fi->second.end());
            }
          }
        }
        for (const StandingQueryId id : affected) {
          const auto it = entries_.find(id);
          if (it == entries_.end()) continue;
          if (EvaluateLocked(id, it->second, ev, now_present, &fired)) {
            ++evals;
          }
        }
      }
      if (now_present) {
        known_.insert(entity);
      } else {
        known_.erase(entity);
      }
    }
    evals_metric_.Add(evals);
  }
  // Push delivery outside the lock: a callback may re-enter the registry
  // (Drain, Unregister) without deadlocking.
  for (const auto& [callback, event] : fired) {
    if (callback != nullptr && *callback) (*callback)(event);
  }
}

std::vector<MatchEvent> StandingQueryRegistry::Drain(StandingQueryId id) {
  const core::MutexLock lock(mu_);
  const auto it = entries_.find(id);
  if (it == entries_.end()) return {};
  std::vector<MatchEvent> out(it->second.pending.begin(),
                              it->second.pending.end());
  it->second.pending.clear();
  return out;
}

std::vector<std::string> StandingQueryRegistry::MatchedEntities(
    StandingQueryId id) const {
  const core::MutexLock lock(mu_);
  const auto it = entries_.find(id);
  if (it == entries_.end()) return {};
  return std::vector<std::string>(it->second.matched.begin(),
                                  it->second.matched.end());
}

std::size_t StandingQueryRegistry::query_count() const {
  const core::MutexLock lock(mu_);
  return entries_.size();
}

std::uint64_t StandingQueryRegistry::dropped(StandingQueryId id) const {
  const core::MutexLock lock(mu_);
  const auto it = entries_.find(id);
  return it == entries_.end() ? 0 : it->second.dropped;
}

void StandingQueryRegistry::BindMetrics(metrics::Registry* registry) {
  registered_metric_ =
      metrics::BindGauge(registry, "censys.query.standing.registered");
  evals_metric_ =
      metrics::BindCounter(registry, "censys.query.standing.evals");
  events_metric_ =
      metrics::BindCounter(registry, "censys.query.standing.events");
  dropped_metric_ =
      metrics::BindCounter(registry, "censys.query.standing.dropped");
  eval_us_metric_ =
      metrics::BindHistogram(registry, "censys.query.standing.eval_us");
}

}  // namespace censys::query
