// Columnar daily analytics segments (the BigQuery role in §5.3).
//
// Aggregation sweeps ("how many hosts run each service name?") used to
// replay the journal: visit every entity, walk its field map, tally.
// This tier transposes a day's host×field state into column segments —
// one column per field, values dictionary-encoded and run-length
// compressed over rows sorted by entity id — so an aggregation reads one
// column's runs (O(runs), already grouped by dictionary id) instead of
// every field of every host.
//
// Segment payload layout (versioned by the leading magic; all integers
// LEB128 varints, strings length-prefixed):
//
//   "CSG1"
//   varint day
//   varint row_count
//   lp(entity_id) × row_count            -- sorted ascending
//   varint column_count
//   per column (sorted by field name):
//     lp(field)
//     varint dict_size
//     lp(value) × dict_size              -- first-appearance order
//     varint run_count
//     (varint dict_id, varint run_len) × run_count
//
// dict_id 0 means "field absent on these rows"; ids 1..dict_size index
// dict[id-1]. Run lengths must sum to row_count — Decode rejects
// anything else, plus trailing bytes, out-of-range ids, and unsorted
// rows, so a corrupt-but-CRC-passing payload can never mis-aggregate.
//
// On disk each segment is one storage::WriteSegmentFile blob
// (CRC-framed, tmp+rename — crash-safe like checkpoints). A segment
// that fails its CRC or its structural validation is counted in
// censys.query.segment_corrupt and the query falls back to the live
// journal walk: slower, never wrong.
//
// Staleness: a segment answers "as of the day it was built". Queries for
// day D are served by the newest cached segment with day' <= D; the
// Aggregate result carries (day, from_segment) so callers — and the
// replica router above — can label the answer's freshness the same way
// PR 9's watermarks label replica reads.
//
// Concurrency: one shared mutex guards the segment cache (`segments_`).
// Decoded segments are immutable shared_ptr<const ColumnSegment>; readers
// take the shared lock only long enough to pick a segment, then scan it
// lock-free. BuildDay takes the exclusive lock only to publish. The
// journal-walk fallback relies on EventJournal's own locking.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/metrics.h"
#include "core/thread_safety.h"
#include "storage/journal.h"

namespace censys::query {

struct ColumnSegment {
  // One maximal run of rows sharing a dictionary id (0 = absent).
  struct Run {
    std::uint32_t value = 0;
    std::uint32_t length = 0;
  };

  struct Column {
    std::string field;
    std::vector<std::string> dict;  // dict[id - 1] for id in 1..size
    std::vector<Run> runs;          // lengths sum to row count
  };

  std::int64_t day = 0;
  std::vector<std::string> row_ids;  // sorted entity ids
  std::vector<Column> columns;       // sorted by field name

  std::string Encode() const;
  // Strict: rejects bad magic, truncation, trailing bytes, unsorted rows
  // or columns, out-of-range dictionary ids, and run-length sums that
  // disagree with row_count.
  static std::optional<ColumnSegment> Decode(std::string_view payload);
};

// Snapshots the journal's current non-empty entities (the same universe
// the search index holds) into a segment stamped `day`.
ColumnSegment BuildSegment(const storage::EventJournal& journal,
                           std::int64_t day);

class AnalyticsTier {
 public:
  struct Options {
    // Segment directory; empty keeps segments in memory only.
    std::string dir;
  };

  // One aggregation sweep's result. `groups` maps field value -> count:
  // host count for GroupCount (one value per host per field), service
  // count for GroupCountSuffix (one per matching field per host).
  struct Aggregate {
    std::map<std::string, std::uint64_t> groups;
    std::uint64_t rows = 0;    // universe rows scanned
    std::int64_t day = -1;     // segment day answered from; -1 = live walk
    bool from_segment = false;
  };

  AnalyticsTier(const storage::EventJournal& journal, Options options)
      : journal_(journal), options_(std::move(options)) {}

  AnalyticsTier(const AnalyticsTier&) = delete;
  AnalyticsTier& operator=(const AnalyticsTier&) = delete;

  // Builds day `day`'s segment from the journal, persists it (when a dir
  // is configured) via the crash-safe segment file, and caches it.
  // Returns false with *error set on a (real or injected) write failure;
  // the cache is only populated on success. Call at a quiescent point —
  // the build walks the live journal.
  bool BuildDay(std::int64_t day, std::string* error);

  // Counts hosts grouped by the value of exactly `field`, answered from
  // the newest segment with day' <= day; falls back to the live journal
  // walk (from_segment = false) when no usable segment exists.
  Aggregate GroupCount(std::int64_t day, std::string_view field) const;

  // Counts services grouped by value across every field whose name ends
  // with `suffix` (e.g. ".service.name" sweeps all ports).
  Aggregate GroupCountSuffix(std::int64_t day, std::string_view suffix) const;

  // The snapshot-walk baseline the segments replace — also the fallback
  // path and the bench's comparison point.
  Aggregate WalkJournal(std::string_view field) const;
  Aggregate WalkJournalSuffix(std::string_view suffix) const;

  std::vector<std::int64_t> CachedDays() const;
  std::string SegmentPath(std::int64_t day) const;

  // Registers the censys.query.* segment/scan instruments.
  void BindMetrics(metrics::Registry* registry);

 private:
  using SegmentPtr = std::shared_ptr<const ColumnSegment>;

  // Newest cached segment with day' <= day; probes the segment directory
  // for exactly `day` on a cache miss. Corrupt files count and read as
  // absent (the caller walks the journal instead).
  SegmentPtr FindSegment(std::int64_t day) const;

  const storage::EventJournal& journal_;
  Options options_;

  mutable core::SharedMutex mu_;
  mutable std::map<std::int64_t, SegmentPtr> segments_ CENSYS_GUARDED_BY(mu_);

  metrics::CounterHandle built_metric_;
  metrics::CounterHandle bytes_metric_;
  metrics::CounterHandle scans_metric_;
  metrics::CounterHandle scan_rows_metric_;
  metrics::CounterHandle corrupt_metric_;
  metrics::CounterHandle fallback_metric_;
};

}  // namespace censys::query
