// Standing queries: register a search expression once, get matches pushed
// as commits land (the percolator inversion of §5.3's search path).
//
// Each registered expression is compiled once (search::ParseQuery) and
// indexed by the fields its terms constrain (search/match.h
// CollectQueryFields). On every group commit the journal's commit
// observer hands the registry the applied events; for each event the
// registry shortlists the queries whose match status could have changed —
// queries naming a field the delta touched, plus every any-field query —
// and re-evaluates only those, per document, with MatchesDocument. No
// full search re-runs, ever.
//
// Universe tracking makes NOT sound: the index evaluates NOT against the
// set of documents with non-empty state, so the registry tracks that
// same universe (`known_`). An entity first entering the universe (or
// leaving it — post-state emptied) bypasses the field shortlist and is
// evaluated against EVERY query: `NOT foo:bar` matches a brand-new
// entity even when its delta never touches `foo`.
//
// Determinism: commits are applied by the one command thread in seqno
// order, queries are kept and evaluated in registration-id order, and
// every container that shapes evaluation order is an ordered std::map /
// std::set — so the per-query event streams are byte-identical across
// engine thread counts (the determinism test diffs the streams across
// threads {1,4} and against a from-scratch search per tick).
//
// Concurrency: one mutex guards all registry state. OnCommit runs on the
// command thread; Register / Unregister / Drain may be called from any
// other thread and serialize against it — registration mid-commit either
// sees the whole commit or none of it. Optional per-query callbacks are
// invoked AFTER the lock is released (on the command thread), so a
// callback may call back into the registry, but must not append to the
// journal.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/metrics.h"
#include "core/thread_safety.h"
#include "core/types.h"
#include "search/query.h"
#include "storage/journal.h"

namespace censys::query {

using StandingQueryId = std::uint64_t;

// One pushed match-set transition: `entity_id` started (kEnter) or
// stopped (kLeave) matching query `query` at the commit of seqno `seqno`.
struct MatchEvent {
  enum class Kind : std::uint8_t { kEnter = 0, kLeave = 1 };

  StandingQueryId query = 0;
  Kind kind = Kind::kEnter;
  std::string entity_id;
  std::uint64_t seqno = 0;  // the triggering event's per-entity seqno
  Timestamp at;

  // Stable textual form ("q3 + 1.2.3.4 #17 @1440") — the determinism
  // test's digest unit.
  std::string ToString() const;

  bool operator==(const MatchEvent&) const = default;
};

class StandingQueryRegistry {
 public:
  struct Options {
    // Per-query pending-event cap; the oldest events are dropped (and
    // counted) once a subscriber falls this far behind.
    std::size_t max_pending = 65536;
  };

  // Pushed-delivery hook, invoked outside the registry lock.
  using Callback = std::function<void(const MatchEvent&)>;

  StandingQueryRegistry() : StandingQueryRegistry(Options{}) {}
  explicit StandingQueryRegistry(Options options) : options_(options) {}

  StandingQueryRegistry(const StandingQueryRegistry&) = delete;
  StandingQueryRegistry& operator=(const StandingQueryRegistry&) = delete;

  // Compiles and registers `expression`. Returns nullopt with *error set
  // on a malformed expression. When `backfill` is non-null the current
  // matches are seeded from it silently (no kEnter flood for
  // already-matching entities) under the registry lock, so a commit
  // racing the registration is either fully reflected in the seed or
  // delivered as events — never half of each.
  std::optional<StandingQueryId> Register(
      std::string_view name, std::string_view expression, std::string* error,
      const storage::EventJournal* backfill = nullptr,
      Callback callback = nullptr);

  // Tears the query down; its undrained events are discarded. Safe
  // against a concurrent OnCommit. Returns false for unknown ids.
  bool Unregister(StandingQueryId id);

  // The journal commit hook (EventJournal::SetCommitObserver target).
  // Command thread; evaluates the shortlisted queries per event.
  void OnCommit(const std::vector<storage::AppliedEvent>& batch);

  // Pops (up to) all pending events of one query, in commit order.
  std::vector<MatchEvent> Drain(StandingQueryId id);

  // Current matched set, sorted (a consistency check for tests).
  std::vector<std::string> MatchedEntities(StandingQueryId id) const;

  std::size_t query_count() const;
  // Events dropped on `id` because the subscriber fell behind.
  std::uint64_t dropped(StandingQueryId id) const;

  // Registers the censys.query.standing.* instruments.
  void BindMetrics(metrics::Registry* registry);

 private:
  struct Entry {
    std::string name;
    std::string expression;
    search::QueryPtr compiled;
    std::set<std::string> fields;  // term-constrained fields
    bool any_field = false;
    std::set<std::string> matched;
    std::deque<MatchEvent> pending;
    std::uint64_t dropped = 0;
    std::shared_ptr<const Callback> callback;  // shared so delivery can
                                               // outlive an Unregister
  };

  // Re-evaluates `entry` against one applied event; queues/pushes the
  // transition event if the match status flipped. Returns true when a
  // MatchesDocument evaluation ran (for the evals counter).
  bool EvaluateLocked(StandingQueryId id, Entry& entry,
                      const storage::AppliedEvent& ev, bool now_present,
                      std::vector<std::pair<std::shared_ptr<const Callback>,
                                            MatchEvent>>* fired)
      CENSYS_REQUIRES(mu_);

  Options options_;

  mutable core::Mutex mu_;
  std::map<StandingQueryId, Entry> entries_ CENSYS_GUARDED_BY(mu_);
  // field name -> queries constraining it (the per-delta shortlist).
  std::map<std::string, std::set<StandingQueryId>> field_index_
      CENSYS_GUARDED_BY(mu_);
  std::set<StandingQueryId> any_field_ CENSYS_GUARDED_BY(mu_);
  // The non-empty-entity universe (mirrors the search index's skip of
  // empty-field entities).
  std::set<std::string> known_ CENSYS_GUARDED_BY(mu_);
  StandingQueryId next_id_ CENSYS_GUARDED_BY(mu_) = 1;

  metrics::GaugeHandle registered_metric_;
  metrics::CounterHandle evals_metric_;
  metrics::CounterHandle events_metric_;
  metrics::CounterHandle dropped_metric_;
  metrics::HistogramHandle eval_us_metric_;
};

std::string_view ToString(MatchEvent::Kind kind);

}  // namespace censys::query
