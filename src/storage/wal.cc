#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>

#include "core/crc32c.h"
#include "core/fault.h"
#include "core/trace.h"
#include "storage/serialize.h"

namespace censys::storage {
namespace {

namespace fs = std::filesystem;

constexpr char kSegmentPrefix[] = "wal-";
constexpr char kSegmentSuffix[] = ".log";
constexpr char kCheckpointPrefix[] = "ckpt-";
constexpr char kCheckpointSuffix[] = ".snap";
constexpr char kCheckpointMagic[8] = {'C', 'S', 'Y', 'S', 'C', 'K', 'P', 'T'};
constexpr std::size_t kFrameHeader = 8;  // u32 len + u32 crc

void PutU32Le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

std::uint32_t GetU32Le(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

std::string Frame(std::string_view payload) {
  std::string frame;
  frame.reserve(kFrameHeader + payload.size());
  PutU32Le(frame, static_cast<std::uint32_t>(payload.size()));
  PutU32Le(frame, core::Crc32c(payload));
  frame.append(payload);
  return frame;
}

void SetError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

// Reads a whole file; returns false on open/read failure.
bool ReadFile(const std::string& path, std::string* out, std::string* error) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    SetError(error, path + ": " + std::strerror(errno));
    return false;
  }
  out->clear();
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      SetError(error, path + ": " + std::strerror(errno));
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    out->append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return true;
}

}  // namespace

std::string EncodeWalPayload(const WalRecord& record) {
  std::string out;
  PutVarint(out, record.lsn);
  out.push_back(static_cast<char>(record.kind));
  PutVarint(out, static_cast<std::uint64_t>(record.at.minutes));
  PutLengthPrefixed(out, record.entity);
  PutLengthPrefixed(out, record.delta.Encode());
  return out;
}

std::optional<WalRecord> DecodeWalPayload(std::string_view payload) {
  WalRecord record;
  std::size_t pos = 0;
  const auto lsn = GetVarint(payload, &pos);
  if (!lsn.has_value()) return std::nullopt;
  record.lsn = *lsn;
  if (pos >= payload.size()) return std::nullopt;
  record.kind = static_cast<std::uint8_t>(payload[pos++]);
  const auto minutes = GetVarint(payload, &pos);
  if (!minutes.has_value()) return std::nullopt;
  record.at = Timestamp{static_cast<std::int64_t>(*minutes)};
  const auto entity = GetLengthPrefixed(payload, &pos);
  if (!entity.has_value()) return std::nullopt;
  record.entity = std::string(*entity);
  const auto delta_bytes = GetLengthPrefixed(payload, &pos);
  if (!delta_bytes.has_value() || pos != payload.size()) return std::nullopt;
  const auto delta = Delta::Decode(*delta_bytes);
  if (!delta.has_value()) return std::nullopt;
  record.delta = *delta;
  return record;
}

WriteAheadLog::WriteAheadLog(Options options) : options_(std::move(options)) {}

WriteAheadLog::~WriteAheadLog() {
  const core::MutexLock lock(mu_);
  if (fd_ >= 0) ::close(fd_);
}

void WriteAheadLog::BindMetrics(metrics::Registry* registry) {
  appends_metric_ =
      metrics::BindCounter(registry, "censys.storage.wal.appends");
  batch_appends_metric_ =
      metrics::BindCounter(registry, "censys.storage.wal.batch_appends");
  bytes_metric_ = metrics::BindCounter(registry, "censys.storage.wal.bytes");
  fsyncs_metric_ = metrics::BindCounter(registry, "censys.storage.wal.fsyncs");
  rotations_metric_ =
      metrics::BindCounter(registry, "censys.storage.wal.rotations");
  checkpoints_metric_ =
      metrics::BindCounter(registry, "censys.storage.wal.checkpoints");
  truncations_metric_ =
      metrics::BindCounter(registry, "censys.storage.wal.truncated_bytes");
  replayed_metric_ =
      metrics::BindCounter(registry, "censys.storage.wal.replayed");
}

std::string WriteAheadLog::SegmentPath(std::uint64_t index) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%s%08llu%s", kSegmentPrefix,
                static_cast<unsigned long long>(index), kSegmentSuffix);
  return (fs::path(options_.dir) / name).string();
}

std::string WriteAheadLog::CheckpointPath(std::uint64_t lsn) const {
  char name[48];
  std::snprintf(name, sizeof(name), "%s%020llu%s", kCheckpointPrefix,
                static_cast<unsigned long long>(lsn), kCheckpointSuffix);
  return (fs::path(options_.dir) / name).string();
}

std::vector<std::uint64_t> WriteAheadLog::ListSegmentIndexes() const {
  std::vector<std::uint64_t> indexes;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(kSegmentPrefix, 0) != 0 ||
        name.size() <= std::strlen(kSegmentPrefix) +
                           std::strlen(kSegmentSuffix) ||
        name.compare(name.size() - std::strlen(kSegmentSuffix),
                     std::strlen(kSegmentSuffix), kSegmentSuffix) != 0) {
      continue;
    }
    const std::string digits =
        name.substr(std::strlen(kSegmentPrefix),
                    name.size() - std::strlen(kSegmentPrefix) -
                        std::strlen(kSegmentSuffix));
    indexes.push_back(std::strtoull(digits.c_str(), nullptr, 10));
  }
  std::sort(indexes.begin(), indexes.end());
  return indexes;
}

bool WriteAheadLog::ScanSegment(
    const std::string& path, bool truncate,
    const std::function<void(const WalRecord&)>& visit, ReplayStats* stats,
    std::uint64_t* valid_bytes, std::string* error) {
  std::string data;
  if (!ReadFile(path, &data, error)) return false;

  std::size_t offset = 0;
  bool corrupt = false;
  while (offset + kFrameHeader <= data.size()) {
    const std::uint32_t len = GetU32Le(data.data() + offset);
    const std::uint32_t stored_crc = GetU32Le(data.data() + offset + 4);
    if (offset + kFrameHeader + len > data.size()) break;  // torn tail

    // The read-path injection point: a fault here simulates media errors
    // on this record's bytes.
    if (const auto fault = fault::Hit("storage.wal.read")) {
      switch (fault->mode) {
        case fault::Mode::kCrash:
          throw fault::CrashException{"storage.wal.read"};
        case fault::Mode::kErrorReturn:
        case fault::Mode::kStall:
          // Unreadable sector: everything from here on is lost.
          corrupt = true;
          break;
        default: {
          // Any corruption mode: one bit of this record's bytes flips.
          const std::size_t span = (kFrameHeader + len) * 8;
          const std::size_t bit = fault->bit % span;
          data[offset + bit / 8] ^= static_cast<char>(1u << (bit % 8));
          break;
        }
      }
      if (corrupt) break;
    }

    // Re-read the header: a bit flip may have landed in it.
    const std::uint32_t len2 = GetU32Le(data.data() + offset);
    const std::uint32_t crc2 = GetU32Le(data.data() + offset + 4);
    if (len2 != len || offset + kFrameHeader + len2 > data.size()) {
      corrupt = true;
      break;
    }
    const std::string_view payload(data.data() + offset + kFrameHeader, len2);
    if (core::Crc32c(payload) != crc2 ||
        (crc2 != stored_crc && core::Crc32c(payload) != stored_crc)) {
      corrupt = true;
      break;
    }
    const auto record = DecodeWalPayload(payload);
    if (!record.has_value()) {
      corrupt = true;
      break;
    }
    if (visit) visit(*record);
    if (stats != nullptr) ++stats->records;
    offset += kFrameHeader + len2;
  }

  const std::uint64_t file_size = data.size();
  *valid_bytes = offset;
  if (offset < file_size) {
    if (stats != nullptr) {
      stats->truncated_bytes += file_size - offset;
      if (corrupt) ++stats->corrupt_records;
    }
    // Read-only scans (tail shipping) report the torn tail but leave the
    // file alone: the writer may still be appending the very frame this
    // reader saw half of.
    if (!truncate) return true;
    // Torn or corrupt tail: truncate the file to the last whole record so
    // future appends land on a record boundary.
    truncated_bytes_.fetch_add(file_size - offset, std::memory_order_relaxed);
    if (corrupt) corrupt_records_.fetch_add(1, std::memory_order_relaxed);
    truncations_metric_.Add(file_size - offset);
    std::error_code ec;
    fs::resize_file(path, offset, ec);
    if (ec) {
      SetError(error, path + ": truncate failed: " + ec.message());
      return false;
    }
  }
  return true;
}

bool WriteAheadLog::Open(std::string* error) {
  const core::MutexLock lock(mu_);
  return OpenLocked(error);
}

bool WriteAheadLog::OpenLocked(std::string* error) {
  if (opened_) return true;
  if (options_.dir.empty()) {
    SetError(error, "wal: no directory configured");
    return false;
  }
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) {
    SetError(error, options_.dir + ": " + ec.message());
    return false;
  }

  segments_.clear();
  const std::vector<std::uint64_t> indexes = ListSegmentIndexes();
  std::uint64_t tail_offset = 0;
  bool log_cut = false;
  for (const std::uint64_t index : indexes) {
    if (log_cut) {
      // A corrupt record invalidates everything after it: later segments
      // are dropped wholesale.
      std::error_code rm_ec;
      const auto size = fs::file_size(SegmentPath(index), rm_ec);
      if (!rm_ec) {
        truncations_metric_.Add(size);
        truncated_bytes_.fetch_add(size, std::memory_order_relaxed);
      }
      fs::remove(SegmentPath(index), rm_ec);
      segments_removed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Segment segment;
    segment.index = index;
    ReplayStats stats;
    std::uint64_t valid_bytes = 0;
    const bool ok = ScanSegment(
        SegmentPath(index), /*truncate=*/true,
        [&](const WalRecord& record) {
          if (segment.first_lsn == 0) segment.first_lsn = record.lsn;
          const std::uint64_t next =
              next_lsn_.load(std::memory_order_relaxed);
          if (record.lsn >= next) {
            next_lsn_.store(record.lsn + 1, std::memory_order_relaxed);
          }
        },
        &stats, &valid_bytes, error);
    if (!ok) return false;
    if (stats.truncated_bytes > 0) log_cut = true;
    tail_offset = valid_bytes;
    segments_.push_back(segment);
  }
  if (segments_.empty()) {
    Segment segment;
    segment.index = 0;
    segments_.push_back(segment);
    tail_offset = 0;
  }

  const std::string active = SegmentPath(segments_.back().index);
  fd_ = ::open(active.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    SetError(error, active + ": " + std::strerror(errno));
    return false;
  }
  if (::lseek(fd_, static_cast<off_t>(tail_offset), SEEK_SET) < 0) {
    SetError(error, active + ": " + std::strerror(errno));
    return false;
  }
  segment_offset_ = tail_offset;
  opened_ = true;
  return true;
}

bool WriteAheadLog::WriteAllLocked(const void* data, std::size_t n,
                                   std::string* error) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t written = ::write(fd_, p, n);
    if (written < 0) {
      if (errno == EINTR) continue;
      SetError(error, std::string("wal write: ") + std::strerror(errno));
      return false;
    }
    p += written;
    n -= static_cast<std::size_t>(written);
  }
  return true;
}

bool WriteAheadLog::SyncLocked(std::string* error) {
  TRACE_SPAN("storage", "wal.fsync");
  if (const auto fault = fault::Hit("storage.wal.fsync")) {
    switch (fault->mode) {
      case fault::Mode::kCrash:
        throw fault::CrashException{"storage.wal.fsync"};
      default:
        SetError(error, "wal fsync: injected failure");
        return false;
    }
  }
  if (fd_ >= 0 && ::fsync(fd_) != 0) {
    SetError(error, std::string("wal fsync: ") + std::strerror(errno));
    return false;
  }
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  fsyncs_metric_.Add();
  return true;
}

bool WriteAheadLog::RotateLocked(std::string* error) {
  if (!SyncLocked(error)) return false;
  ::close(fd_);
  fd_ = -1;
  Segment segment;
  segment.index = segments_.back().index + 1;
  const std::string path = SegmentPath(segment.index);
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    SetError(error, path + ": " + std::strerror(errno));
    return false;
  }
  segments_.push_back(segment);
  segment_offset_ = 0;
  rotations_.fetch_add(1, std::memory_order_relaxed);
  rotations_metric_.Add();
  return true;
}

bool WriteAheadLog::Append(WalRecord& record, std::string* error) {
  TRACE_SPAN("storage", "wal.append");
  const core::MutexLock lock(mu_);
  if (!opened_ && !OpenLocked(error)) return false;

  record.lsn = next_lsn_.load(std::memory_order_relaxed);
  std::string frame = Frame(EncodeWalPayload(record));

  if (const auto fault = fault::Hit("storage.wal.append")) {
    switch (fault->mode) {
      case fault::Mode::kErrorReturn:
      default:
        SetError(error, "wal append: injected failure");
        return false;
      case fault::Mode::kCrash:
        throw fault::CrashException{"storage.wal.append"};
      case fault::Mode::kTornWrite: {
        // A prefix of the frame reaches the medium, then the process
        // dies. Recovery must drop this record.
        const std::size_t torn = std::clamp<std::size_t>(
            static_cast<std::size_t>(fault->tear_frac *
                                     static_cast<double>(frame.size())),
            1, frame.size() - 1);
        std::string ignored;
        WriteAllLocked(frame.data(), torn, &ignored);
        throw fault::CrashException{"storage.wal.append"};
      }
      case fault::Mode::kBitFlip: {
        // Silent corruption on the way to the medium; CRC validation
        // catches it at recovery time.
        const std::size_t bit = fault->bit % (frame.size() * 8);
        frame[bit / 8] ^= static_cast<char>(1u << (bit % 8));
        break;
      }
    }
  }

  if (segment_offset_ > 0 &&
      segment_offset_ + frame.size() > options_.segment_bytes) {
    if (!RotateLocked(error)) return false;
  }
  if (!WriteAllLocked(frame.data(), frame.size(), error)) return false;
  segment_offset_ += frame.size();
  if (segments_.back().first_lsn == 0) {
    segments_.back().first_lsn = record.lsn;
  }
  if (options_.fsync_each) {
    if (!SyncLocked(error)) {
      // The bytes may or may not be durable; withdraw them so the
      // in-memory journal (which will not apply this event) and the log
      // cannot diverge.
      segment_offset_ -= frame.size();
      ::ftruncate(fd_, static_cast<off_t>(segment_offset_));
      ::lseek(fd_, static_cast<off_t>(segment_offset_), SEEK_SET);
      return false;
    }
  }

  next_lsn_.fetch_add(1, std::memory_order_relaxed);
  appended_records_.fetch_add(1, std::memory_order_relaxed);
  appended_bytes_.fetch_add(frame.size(), std::memory_order_relaxed);
  appends_metric_.Add();
  bytes_metric_.Add(frame.size());
  return true;
}

bool WriteAheadLog::AppendBatch(std::vector<WalRecord>& records,
                                std::string* error) {
  if (records.empty()) return true;
  TRACE_SPAN_VAR(span, "storage", "wal.append_batch");
  span.SetArg("records", std::to_string(records.size()));
  const core::MutexLock lock(mu_);
  if (!opened_ && !OpenLocked(error)) return false;

  // Frame the whole batch first. Fault points fire per record, exactly as
  // they would for N serial Appends: an error-return rejects the batch
  // before a single byte is written (nothing durable, nothing applied); a
  // crash/torn-write loses at most the batch's buffered tail, which
  // recovery truncates back to a record boundary.
  const std::uint64_t first_lsn = next_lsn_.load(std::memory_order_relaxed);
  std::string buffer;
  for (std::size_t i = 0; i < records.size(); ++i) {
    records[i].lsn = first_lsn + i;
    std::string frame = Frame(EncodeWalPayload(records[i]));
    if (const auto fault = fault::Hit("storage.wal.append")) {
      switch (fault->mode) {
        case fault::Mode::kErrorReturn:
        default:
          SetError(error, "wal append: injected failure");
          return false;
        case fault::Mode::kCrash:
          throw fault::CrashException{"storage.wal.append"};
        case fault::Mode::kTornWrite: {
          // The batch dies mid-flight: everything buffered so far plus a
          // prefix of this frame reaches the medium.
          buffer += frame.substr(
              0, std::clamp<std::size_t>(
                     static_cast<std::size_t>(
                         fault->tear_frac * static_cast<double>(frame.size())),
                     1, frame.size() - 1));
          std::string ignored;
          WriteAllLocked(buffer.data(), buffer.size(), &ignored);
          throw fault::CrashException{"storage.wal.append"};
        }
        case fault::Mode::kBitFlip: {
          const std::size_t bit = fault->bit % (frame.size() * 8);
          frame[bit / 8] ^= static_cast<char>(1u << (bit % 8));
          break;
        }
      }
    }
    buffer += frame;
  }

  if (segment_offset_ > 0 &&
      segment_offset_ + buffer.size() > options_.segment_bytes) {
    if (!RotateLocked(error)) return false;
  }
  if (!WriteAllLocked(buffer.data(), buffer.size(), error)) return false;
  segment_offset_ += buffer.size();
  if (segments_.back().first_lsn == 0) {
    segments_.back().first_lsn = first_lsn;
  }
  if (options_.fsync_each) {
    // One fsync for the whole batch — the point of group commit.
    if (!SyncLocked(error)) {
      segment_offset_ -= buffer.size();
      ::ftruncate(fd_, static_cast<off_t>(segment_offset_));
      ::lseek(fd_, static_cast<off_t>(segment_offset_), SEEK_SET);
      return false;
    }
  }

  next_lsn_.fetch_add(records.size(), std::memory_order_relaxed);
  appended_records_.fetch_add(records.size(), std::memory_order_relaxed);
  appended_bytes_.fetch_add(buffer.size(), std::memory_order_relaxed);
  batch_appends_.fetch_add(1, std::memory_order_relaxed);
  appends_metric_.Add(records.size());
  bytes_metric_.Add(buffer.size());
  batch_appends_metric_.Add();
  return true;
}

bool WriteAheadLog::Sync(std::string* error) {
  const core::MutexLock lock(mu_);
  if (!opened_) return true;
  return SyncLocked(error);
}

bool WriteAheadLog::ScanRange(
    std::uint64_t from_lsn, std::uint64_t end_lsn, std::size_t max_records,
    bool truncate, const std::function<void(const WalRecord&)>& visit,
    ReplayStats* stats, std::string* error) {
  std::vector<Segment> segments;
  {
    const core::MutexLock lock(mu_);
    if (!opened_ && !OpenLocked(error)) return false;
    segments = segments_;
  }
  // The scan itself runs unlocked. The recovery path is startup-only (it
  // must not race Append), and the journal's visitor re-enters the shard
  // locks — holding mu_ across it would invert the shard-lock -> wal-lock
  // order the append path establishes. Read-only tail scans tolerate a
  // racing appender by construction (a half-written final frame just ends
  // the scan).
  ReplayStats local;
  ReplayStats* out = stats != nullptr ? stats : &local;
  bool done = false;
  for (std::size_t i = 0; i < segments.size() && !done; ++i) {
    // A segment is fully covered by from_lsn when its successor's first
    // record — which bounds every lsn it holds — is already at or below
    // from_lsn + 1. Open() scanned these files once; skipping them here
    // is what removed Recover()'s duplicate segment open.
    if (i + 1 < segments.size() && segments[i + 1].first_lsn != 0 &&
        segments[i + 1].first_lsn <= from_lsn + 1) {
      continue;
    }
    std::uint64_t valid_bytes = 0;
    ReplayStats scan;
    const bool ok = ScanSegment(
        SegmentPath(segments[i].index), truncate,
        [&](const WalRecord& record) {
          if (done) return;
          if (record.lsn <= from_lsn) {
            ++out->skipped;
            return;
          }
          if (record.lsn > end_lsn ||
              (max_records > 0 && out->records >= max_records)) {
            done = true;
            return;
          }
          ++out->records;
          if (visit) visit(record);
        },
        &scan, &valid_bytes, error);
    if (!ok) return false;
    out->corrupt_records += scan.corrupt_records;
    out->truncated_bytes += scan.truncated_bytes;
    if (scan.truncated_bytes > 0) break;  // log cut: stop here
  }
  return true;
}

bool WriteAheadLog::Replay(
    std::uint64_t from_lsn,
    const std::function<void(const WalRecord&)>& visit, ReplayStats* stats,
    std::string* error) {
  TRACE_SPAN("storage", "wal.replay");
  return ScanRange(from_lsn, std::numeric_limits<std::uint64_t>::max(), 0,
                   /*truncate=*/true,
                   [&](const WalRecord& record) {
                     replayed_metric_.Add();
                     if (visit) visit(record);
                   },
                   stats, error);
}

bool WriteAheadLog::ReadTail(std::uint64_t from_lsn, std::uint64_t end_lsn,
                             std::size_t max_records,
                             std::vector<WalRecord>* out, std::string* error) {
  return ScanRange(from_lsn, end_lsn, max_records, /*truncate=*/false,
                   [&](const WalRecord& record) { out->push_back(record); },
                   nullptr, error);
}

std::uint64_t WriteAheadLog::oldest_lsn() const {
  const core::MutexLock lock(mu_);
  for (const Segment& segment : segments_) {
    if (segment.first_lsn != 0) return segment.first_lsn;
  }
  return 0;
}

bool WriteAheadLog::WriteCheckpoint(std::uint64_t lsn,
                                    std::string_view payload,
                                    std::string* error) {
  TRACE_SPAN("storage", "wal.checkpoint");
  const core::MutexLock lock(mu_);
  if (!opened_ && !OpenLocked(error)) return false;

  // Make the log itself durable up to the state the checkpoint covers
  // before the checkpoint can supersede it.
  if (!SyncLocked(error)) return false;

  std::string file;
  file.reserve(sizeof(kCheckpointMagic) + kFrameHeader + payload.size());
  file.append(kCheckpointMagic, sizeof(kCheckpointMagic));
  PutU32Le(file, static_cast<std::uint32_t>(payload.size()));
  PutU32Le(file, core::Crc32c(payload));
  file.append(payload);

  if (const auto fault = fault::Hit("storage.wal.append")) {
    switch (fault->mode) {
      case fault::Mode::kErrorReturn:
      default:
        SetError(error, "wal checkpoint: injected failure");
        return false;
      case fault::Mode::kCrash:
        throw fault::CrashException{"storage.wal.append"};
      case fault::Mode::kTornWrite: {
        // Die with a partial temp file on disk; recovery ignores *.tmp.
        const std::string tmp = CheckpointPath(lsn) + ".tmp";
        const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                              0644);
        if (fd >= 0) {
          const std::size_t torn = std::clamp<std::size_t>(
              static_cast<std::size_t>(fault->tear_frac *
                                       static_cast<double>(file.size())),
              1, file.size() - 1);
          [[maybe_unused]] const ssize_t n = ::write(fd, file.data(), torn);
          ::close(fd);
        }
        throw fault::CrashException{"storage.wal.append"};
      }
      case fault::Mode::kBitFlip: {
        const std::size_t bit =
            fault->bit % ((file.size() - sizeof(kCheckpointMagic)) * 8);
        file[sizeof(kCheckpointMagic) + bit / 8] ^=
            static_cast<char>(1u << (bit % 8));
        break;
      }
    }
  }

  const std::string tmp = CheckpointPath(lsn) + ".tmp";
  const std::string final_path = CheckpointPath(lsn);
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    SetError(error, tmp + ": " + std::strerror(errno));
    return false;
  }
  const char* p = file.data();
  std::size_t n = file.size();
  while (n > 0) {
    const ssize_t written = ::write(fd, p, n);
    if (written < 0) {
      if (errno == EINTR) continue;
      SetError(error, tmp + ": " + std::strerror(errno));
      ::close(fd);
      return false;
    }
    p += written;
    n -= static_cast<std::size_t>(written);
  }
  if (const auto fault = fault::Hit("storage.wal.fsync")) {
    if (fault->mode == fault::Mode::kCrash) {
      ::close(fd);
      throw fault::CrashException{"storage.wal.fsync"};
    }
    SetError(error, "wal checkpoint fsync: injected failure");
    ::close(fd);
    return false;
  }
  ::fsync(fd);
  ::close(fd);
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  fsyncs_metric_.Add();

  std::error_code ec;
  fs::rename(tmp, final_path, ec);
  if (ec) {
    SetError(error, final_path + ": " + ec.message());
    return false;
  }
  checkpoints_written_.fetch_add(1, std::memory_order_relaxed);
  checkpoints_metric_.Add();

  // Prune old checkpoints beyond the retention count, then drop segments
  // the new checkpoint fully covers ("snapshots bound replay").
  std::vector<std::uint64_t> lsns = ListCheckpoints();
  for (std::size_t i = options_.keep_checkpoints; i < lsns.size(); ++i) {
    fs::remove(CheckpointPath(lsns[i]), ec);
  }
  RemoveSegmentsBelowLocked(lsn);
  return true;
}

void WriteAheadLog::RemoveSegmentsBelowLocked(std::uint64_t lsn) {
  // A closed segment is removable when its successor's first record —
  // which bounds every lsn it holds — is already covered by `lsn`.
  while (segments_.size() > 1) {
    const Segment& next = segments_[1];
    if (next.first_lsn == 0 || next.first_lsn > lsn + 1) break;
    std::error_code ec;
    fs::remove(SegmentPath(segments_.front().index), ec);
    segments_.erase(segments_.begin());
    segments_removed_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<std::uint64_t> WriteAheadLog::ListCheckpoints() const {
  std::vector<std::uint64_t> lsns;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(kCheckpointPrefix, 0) != 0 ||
        name.size() <= std::strlen(kCheckpointPrefix) +
                           std::strlen(kCheckpointSuffix) ||
        name.compare(name.size() - std::strlen(kCheckpointSuffix),
                     std::strlen(kCheckpointSuffix),
                     kCheckpointSuffix) != 0) {
      continue;
    }
    const std::string digits =
        name.substr(std::strlen(kCheckpointPrefix),
                    name.size() - std::strlen(kCheckpointPrefix) -
                        std::strlen(kCheckpointSuffix));
    lsns.push_back(std::strtoull(digits.c_str(), nullptr, 10));
  }
  std::sort(lsns.rbegin(), lsns.rend());
  return lsns;
}

std::optional<std::string> WriteAheadLog::ReadCheckpoint(
    std::uint64_t lsn) const {
  std::string data;
  std::string error;
  if (!ReadFile(CheckpointPath(lsn), &data, &error)) return std::nullopt;
  if (data.size() < sizeof(kCheckpointMagic) + kFrameHeader) {
    return std::nullopt;
  }
  if (const auto fault = fault::Hit("storage.wal.read")) {
    switch (fault->mode) {
      case fault::Mode::kCrash:
        throw fault::CrashException{"storage.wal.read"};
      case fault::Mode::kErrorReturn:
        return std::nullopt;
      default: {
        const std::size_t bit = fault->bit % (data.size() * 8);
        data[bit / 8] ^= static_cast<char>(1u << (bit % 8));
        break;
      }
    }
  }
  if (std::memcmp(data.data(), kCheckpointMagic, sizeof(kCheckpointMagic)) !=
      0) {
    return std::nullopt;
  }
  const std::uint32_t len = GetU32Le(data.data() + sizeof(kCheckpointMagic));
  const std::uint32_t crc =
      GetU32Le(data.data() + sizeof(kCheckpointMagic) + 4);
  if (sizeof(kCheckpointMagic) + kFrameHeader + len != data.size()) {
    return std::nullopt;
  }
  std::string payload =
      data.substr(sizeof(kCheckpointMagic) + kFrameHeader, len);
  if (core::Crc32c(payload) != crc) return std::nullopt;
  return payload;
}

}  // namespace censys::storage
