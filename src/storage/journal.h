// The Bigtable-backed event journal (§5.2).
//
// Entity state is journaled as a sequence of delta-encoded events keyed by
// (Entity ID, monotonic Sequence Number). Snapshots bound replay length;
// rows older than the latest snapshot migrate from SSD to HDD. Lookups at
// arbitrary timestamps reconstruct state by applying journal events on top
// of the nearest prior snapshot — exactly the read path of §5.2.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/metrics.h"
#include "core/types.h"
#include "storage/delta.h"
#include "storage/kv.h"

namespace censys::storage {

enum class EventKind : std::uint8_t {
  kServiceFound = 0,
  kServiceChanged = 1,
  kServiceRemoved = 2,
  kEntityUpdated = 3,
};

std::string_view ToString(EventKind k);

struct JournalEvent {
  std::uint64_t seqno = 0;
  Timestamp at;
  EventKind kind = EventKind::kEntityUpdated;
  Delta delta;
};

class EventJournal {
 public:
  struct Options {
    // Snapshot every N events per entity ("Censys regularly snapshots
    // entity state to minimize the maximum number of events that need to
    // be retrieved for a query").
    std::uint32_t snapshot_every = 16;
    // Automatically migrate pre-snapshot rows to HDD on snapshot.
    bool auto_tier = true;
  };

  EventJournal() = default;
  explicit EventJournal(Options options) : options_(options) {}

  // Applies `delta` to the entity's current state, journals the event, and
  // returns its sequence number. Empty deltas with kind kEntityUpdated are
  // skipped (no-op refreshes produce no journal rows).
  std::uint64_t Append(std::string_view entity_id, EventKind kind,
                       Timestamp at, const Delta& delta);

  // Cached current state (the fast path behind the Lookup API).
  const FieldMap* CurrentState(std::string_view entity_id) const;

  // Reconstructs entity state as of `at` from snapshot + replay. Returns
  // nullopt for entities with no events at or before `at`.
  std::optional<FieldMap> ReconstructAt(std::string_view entity_id,
                                        Timestamp at) const;

  // All events of an entity in seqno order (history API).
  std::vector<JournalEvent> History(std::string_view entity_id) const;

  // Entities with at least one journal row.
  std::vector<std::string> EntityIds() const;
  void ForEachEntity(
      const std::function<void(std::string_view, const FieldMap&)>& fn) const;

  // --- storage accounting ---------------------------------------------------
  std::uint64_t event_count() const { return event_count_; }
  std::uint64_t snapshot_count() const { return snapshot_count_; }
  // Bytes of encoded deltas actually journaled.
  std::uint64_t delta_bytes() const { return delta_bytes_; }
  // Bytes of encoded snapshots written.
  std::uint64_t snapshot_bytes() const { return snapshot_bytes_; }

  // Registers censys.storage.* instruments (events, snapshots, bytes).
  void BindMetrics(metrics::Registry* registry);
  // Bytes that journaling full records instead would have cost (the
  // delta-encoding ablation of DESIGN.md §4.6).
  std::uint64_t full_record_bytes_equivalent() const {
    return full_bytes_equivalent_;
  }
  const OrderedKv& table() const { return table_; }

  // Longest replay (events applied after the snapshot) seen by a
  // ReconstructAt call; snapshots exist to bound this.
  std::uint64_t max_replay_length() const { return max_replay_; }

 private:
  struct EntityMeta {
    std::uint64_t next_seqno = 0;
    std::uint64_t last_snapshot_seqno = 0;
    bool has_snapshot = false;
    std::uint32_t events_since_snapshot = 0;
    FieldMap current;
  };

  static std::string EventKey(std::string_view entity, std::uint64_t seqno);
  static std::string SnapshotKey(std::string_view entity, std::uint64_t seqno);

  void WriteSnapshot(std::string_view entity_id, EntityMeta& meta,
                     Timestamp at);

  Options options_{};
  OrderedKv table_;
  std::unordered_map<std::string, EntityMeta> meta_;
  std::uint64_t event_count_ = 0;
  std::uint64_t snapshot_count_ = 0;
  std::uint64_t delta_bytes_ = 0;
  std::uint64_t snapshot_bytes_ = 0;
  std::uint64_t full_bytes_equivalent_ = 0;
  mutable std::uint64_t max_replay_ = 0;

  metrics::CounterHandle events_metric_;
  metrics::CounterHandle snapshots_metric_;
  metrics::CounterHandle delta_bytes_metric_;
  metrics::CounterHandle snapshot_bytes_metric_;
};

}  // namespace censys::storage
