// The Bigtable-backed event journal (§5.2).
//
// Entity state is journaled as a sequence of delta-encoded events keyed by
// (Entity ID, monotonic Sequence Number). Snapshots bound replay length;
// rows older than the latest snapshot migrate from SSD to HDD. Lookups at
// arbitrary timestamps reconstruct state by applying journal events on top
// of the nearest prior snapshot — exactly the read path of §5.2.
//
// Concurrency: entity metadata and the backing OrderedKv are partitioned
// across N lock-striped shards keyed by a stable hash of the entity id.
// Each shard is guarded by a shared_mutex, so CurrentState / SnapshotState /
// ReconstructAt / History on one entity run concurrently with Append on
// another (and concurrently with each other on the same entity). Writers
// take the shard lock exclusively. Aggregate counters are relaxed atomics.
// Shard count does not change journal *content*: the same entity always
// lands in the same shard for a given configuration, and ScanAll() visits
// rows in canonical key order regardless of sharding — the digest tests
// rely on this.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/metrics.h"
#include "core/thread_safety.h"
#include "core/types.h"
#include "storage/delta.h"
#include "storage/kv.h"
#include "storage/wal.h"

namespace censys::storage {

enum class EventKind : std::uint8_t {
  kServiceFound = 0,
  kServiceChanged = 1,
  kServiceRemoved = 2,
  kEntityUpdated = 3,
};

std::string_view ToString(EventKind k);

struct JournalEvent {
  std::uint64_t seqno = 0;
  Timestamp at;
  EventKind kind = EventKind::kEntityUpdated;
  Delta delta;
};

// A point-in-time copy of an entity's current state plus the seqno
// watermark (next unassigned seqno) it was taken at. The watermark is the
// read-side cache key: it advances exactly when the entity journals a new
// event, so equal watermarks mean byte-identical journaled state.
struct VersionedState {
  FieldMap fields;
  std::uint64_t watermark = 0;
};

// Thrown by Append when the configured WAL rejects the record (real or
// injected I/O failure). The in-memory journal is untouched: an event is
// either durable in the log *and* applied, or neither. Derived from
// std::runtime_error on purpose — unlike fault::CrashException this is an
// ordinary, catchable error.
class WalIoError : public std::runtime_error {
 public:
  explicit WalIoError(const std::string& what) : std::runtime_error(what) {}
};

// What EventJournal::Recover() found on disk.
struct RecoveryReport {
  bool ok = false;
  std::string error;
  // LSN of the checkpoint recovery started from (0 = none usable).
  std::uint64_t checkpoint_lsn = 0;
  // Stale/corrupt checkpoints skipped before one loaded (or all failed).
  std::uint64_t checkpoints_rejected = 0;
  // WAL records replayed on top of the checkpoint.
  std::uint64_t replayed_records = 0;
  // Bytes dropped at torn/corrupt log tails during the recovery scan.
  std::uint64_t truncated_bytes = 0;
  std::uint64_t corrupt_records = 0;
  // Total events in the journal after recovery.
  std::uint64_t recovered_events = 0;
};

// One event as applied by Append/AppendBatch, as seen by a commit
// observer. Every pointer / view aliases storage owned by the caller or
// the journal and is valid only for the duration of the observer call:
// `post_state` points at the entity's live current-state map (stable
// across rehash, but mutated by the next command-thread append).
struct AppliedEvent {
  std::string_view entity_id;
  std::uint64_t seqno = 0;
  EventKind kind = EventKind::kEntityUpdated;
  Timestamp at;
  const Delta* delta = nullptr;
  const FieldMap* post_state = nullptr;  // state *after* applying delta
};

class EventJournal {
 public:
  struct Options {
    // Snapshot every N events per entity ("Censys regularly snapshots
    // entity state to minimize the maximum number of events that need to
    // be retrieved for a query").
    std::uint32_t snapshot_every = 16;
    // Automatically migrate pre-snapshot rows to HDD on snapshot.
    bool auto_tier = true;
    // Lock stripes. Entities hash onto shards; more shards means less
    // reader/writer contention. Content is shard-count independent.
    std::uint32_t shards = 16;
    // Write-ahead log configuration. A non-empty wal.dir enables
    // durability: every Append is logged before it is applied, and
    // Checkpoint()/Recover() persist and restore full journal state.
    WriteAheadLog::Options wal{};
  };

  EventJournal() : EventJournal(Options{}) {}
  explicit EventJournal(Options options);

  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  // Applies `delta` to the entity's current state, journals the event, and
  // returns its sequence number. Empty deltas with kind kEntityUpdated are
  // skipped (no-op refreshes produce no journal rows or WAL records).
  // With a WAL configured the record is logged *before* any in-memory
  // mutation; a log failure throws WalIoError and leaves the journal
  // untouched. May propagate fault::CrashException from armed crash points.
  std::uint64_t Append(std::string_view entity_id, EventKind kind,
                       Timestamp at, const Delta& delta);

  // One staged journal append, buffered by the write side's group commit.
  struct PendingEvent {
    std::string entity_id;
    EventKind kind = EventKind::kEntityUpdated;
    Timestamp at;
    Delta delta;
  };

  // Group commit: journals every event in order with ONE WAL batch append
  // (at most one fsync) instead of one log write per event. Equivalent to
  // calling Append for each element — same seqnos, same rows, same WAL
  // framing — so batch boundaries never change journal content or replay.
  // A WAL error-return rejects the whole batch (WalIoError, journal
  // untouched); an armed crash/torn-write fault may leave a record-aligned
  // prefix durable, which recovery replays like any other tail. Takes the
  // batch by value so staged deltas move into the WAL framing instead of
  // being copied once per record.
  void AppendBatch(std::vector<PendingEvent> events);

  // --- durability (WAL-backed journals only) ---------------------------------
  bool wal_enabled() const { return wal_ != nullptr; }
  WriteAheadLog* wal() { return wal_.get(); }

  // Durably persists the full journal state (metadata, rows, tiers,
  // counters) as a checkpoint covering the WAL's current last LSN, then
  // lets the WAL prune covered segments. Returns the covered LSN, or
  // nullopt on failure. Must not race Append — call at a quiescent point
  // (e.g. between engine ticks).
  std::optional<std::uint64_t> Checkpoint(std::string* error);

  // Rebuilds the journal from disk: newest valid checkpoint (corrupt ones
  // fall back to older, then to empty) plus a replay of every WAL record
  // after it. Torn/corrupt log tails are truncated, not fatal. The
  // resulting journal is byte-identical (ScanAll digest) to an uncrashed
  // journal that appended the same durable prefix. Startup-only: call on a
  // freshly constructed journal before any Append.
  RecoveryReport Recover();

  // --- replication (src/replicate/) -------------------------------------------
  // Serializes full journal state for replica bootstrap — the same payload
  // format Checkpoint() persists, produced without touching disk. `lsn` is
  // the WAL LSN the snapshot covers (the leader's last durable LSN at a
  // quiescent point; the caller must not race Append).
  std::string EncodeReplicaSnapshot(std::uint64_t lsn) const;

  // Follower (re-)bootstrap: resets this journal *in place* and loads
  // `payload` (which must cover `lsn`). Unlike Recover(), the Shard array
  // is never reallocated — each shard is cleared under its own exclusive
  // lock — so a ReadSide serving concurrent lookups against this journal
  // stays memory-safe throughout (readers see empty-then-loading state,
  // never freed memory). Returns false and leaves the journal empty on a
  // corrupt payload.
  bool LoadReplicaSnapshot(std::string_view payload, std::uint64_t lsn);

  // Applies one shipped WAL record without logging it locally (followers
  // keep no WAL of their own; durability lives on the leader). Equivalent
  // to the Recover() replay path, one record at a time.
  std::uint64_t ApplyReplicated(const WalRecord& record);

  // --- commit observation (src/query/ standing queries) -----------------------
  // Called once per Append / AppendBatch, on the command thread, after
  // every shard lock is released, with the events the call applied in
  // seqno order. The vector and everything its elements point at are
  // valid only during the call. NOT invoked for Recover() replay or
  // ApplyReplicated() — observers see live commits, not catch-up; attach
  // (and detach) only at a quiescent point (no concurrent Append).
  using CommitObserver = std::function<void(const std::vector<AppliedEvent>&)>;
  void SetCommitObserver(CommitObserver observer) {
    observer_ = std::move(observer);
  }

  const Options& options() const { return options_; }

  // Cached current state (the fast path behind the Lookup API). The
  // returned pointer is stable but its contents are only safe to read from
  // the (single) writer thread; concurrent readers must use SnapshotState.
  // Statically: callers must hold the journal's command-thread capability
  // (ThreadRoleGuard); at runtime, debug builds assert the calling thread.
  const FieldMap* CurrentState(std::string_view entity_id) const
      CENSYS_REQUIRES(command_role());

  // Copy of the current state plus its seqno watermark, taken atomically
  // under the shard's reader lock. This is the concurrent read path.
  std::optional<VersionedState> SnapshotState(std::string_view entity_id) const;

  // The entity's seqno watermark (next unassigned seqno); 0 for entities
  // with no journal rows. Cheap: one shared lock, no state copy.
  std::uint64_t Watermark(std::string_view entity_id) const;

  // Reconstructs entity state as of `at` from snapshot + replay. Returns
  // nullopt for entities with no events at or before `at`.
  std::optional<FieldMap> ReconstructAt(std::string_view entity_id,
                                        Timestamp at) const;

  // All events of an entity in seqno order (history API).
  std::vector<JournalEvent> History(std::string_view entity_id) const;

  // Entities with at least one journal row.
  std::vector<std::string> EntityIds() const;
  void ForEachEntity(
      const std::function<void(std::string_view, const FieldMap&)>& fn) const;

  // Visits every row of every shard in canonical (lexicographic key) order
  // — the same order the pre-sharding single table scanned in, independent
  // of shard count. Used by digests, dumps, and growth accounting.
  void ScanAll(const std::function<bool(std::string_view key,
                                        std::string_view value)>& visit) const;

  // --- storage accounting ---------------------------------------------------
  std::uint64_t event_count() const {
    return event_count_.load(std::memory_order_relaxed);
  }
  std::uint64_t snapshot_count() const {
    return snapshot_count_.load(std::memory_order_relaxed);
  }
  // Bytes of encoded deltas actually journaled.
  std::uint64_t delta_bytes() const {
    return delta_bytes_.load(std::memory_order_relaxed);
  }
  // Bytes of encoded snapshots written.
  std::uint64_t snapshot_bytes() const {
    return snapshot_bytes_.load(std::memory_order_relaxed);
  }
  // Aggregates across shards (the old single-table accessors).
  std::size_t RowCount() const;
  std::uint64_t bytes_on(Tier tier) const;
  std::uint64_t total_bytes() const { return bytes_on(Tier::kSsd) + bytes_on(Tier::kHdd); }

  std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shard_count_);
  }

  // Registers censys.storage.* instruments (events, snapshots, bytes).
  void BindMetrics(metrics::Registry* registry);
  // Bytes that journaling full records instead would have cost (the
  // delta-encoding ablation of DESIGN.md §4.6).
  std::uint64_t full_record_bytes_equivalent() const {
    return full_bytes_equivalent_.load(std::memory_order_relaxed);
  }

  // Longest replay (events applied after the snapshot) seen by a
  // ReconstructAt call; snapshots exist to bound this.
  std::uint64_t max_replay_length() const {
    return max_replay_.load(std::memory_order_relaxed);
  }

  // The command-thread capability backing CurrentState's pointer contract.
  // Append (re-)stamps the command thread in debug builds.
  const core::ThreadRole& command_role() const { return command_role_; }

 private:
  struct EntityMeta {
    std::uint64_t next_seqno = 0;
    std::uint64_t last_snapshot_seqno = 0;
    bool has_snapshot = false;
    std::uint32_t events_since_snapshot = 0;
    FieldMap current;
    // Encoded size of `current`'s (key, value) pairs, maintained
    // incrementally per delta op so the full-record ablation counter costs
    // O(ops) per append instead of re-encoding the whole entity.
    std::uint64_t fields_bytes = 0;
  };

  struct Shard {
    mutable core::SharedMutex mu;
    OrderedKv table CENSYS_GUARDED_BY(mu);
    std::unordered_map<std::string, EntityMeta> meta CENSYS_GUARDED_BY(mu);
  };

  static std::string EventKey(std::string_view entity, std::uint64_t seqno);
  static std::string SnapshotKey(std::string_view entity, std::uint64_t seqno);

  Shard& ShardFor(std::string_view entity_id) const;

  void WriteSnapshot(Shard& shard, std::string_view entity_id,
                     EntityMeta& meta, Timestamp at)
      CENSYS_REQUIRES(shard.mu);

  // The shared body of Append and WAL replay: applies and journals one
  // event. `durable` selects whether the record is WAL-logged first
  // (replay must not re-log what it reads from the log); `observe` stages
  // the event for the commit observer (live appends only — replay and
  // replication apply with observe=false).
  std::uint64_t ApplyEvent(std::string_view entity_id, EventKind kind,
                           Timestamp at, const Delta& delta, bool durable,
                           bool observe);

  // Delivers (and clears) the staged observed_ batch. Command thread
  // only; called by Append/AppendBatch after their shard locks drop.
  void NotifyObserver();

  // Serializes / restores full journal state for checkpoints.
  std::string EncodeCheckpoint(std::uint64_t lsn) const;
  bool LoadCheckpoint(std::string_view payload, std::uint64_t expect_lsn);

  Options options_{};
  std::size_t shard_count_ = 1;
  std::unique_ptr<Shard[]> shards_;
  std::unique_ptr<WriteAheadLog> wal_;
  core::ThreadRole command_role_;

  // Commit observation: both are touched only on the command thread
  // (Append/AppendBatch callers), so they need no lock of their own.
  CommitObserver observer_;
  std::vector<AppliedEvent> observed_;

  std::atomic<std::uint64_t> event_count_{0};
  std::atomic<std::uint64_t> snapshot_count_{0};
  std::atomic<std::uint64_t> delta_bytes_{0};
  std::atomic<std::uint64_t> snapshot_bytes_{0};
  std::atomic<std::uint64_t> full_bytes_equivalent_{0};
  mutable std::atomic<std::uint64_t> max_replay_{0};

  metrics::CounterHandle events_metric_;
  metrics::CounterHandle snapshots_metric_;
  metrics::CounterHandle delta_bytes_metric_;
  metrics::CounterHandle snapshot_bytes_metric_;
};

}  // namespace censys::storage
