#include "storage/segment_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>

#include "core/crc32c.h"
#include "core/fault.h"

namespace censys::storage {
namespace {

constexpr std::size_t kFrameHeader = 8;  // u32 len + u32 crc

void PutU32Le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t GetU32Le(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

void SetError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

bool WriteAll(int fd, const char* data, std::size_t n, std::string* error) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      SetError(error, std::string("segment write: ") + std::strerror(errno));
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

bool WriteSegmentFile(const std::string& path, std::string_view payload,
                      std::string* error) {
  std::string frame;
  frame.reserve(kFrameHeader + payload.size());
  PutU32Le(frame, static_cast<std::uint32_t>(payload.size()));
  PutU32Le(frame, core::Crc32c(payload));
  frame.append(payload);

  bool torn = false;
  if (const auto fault = fault::Hit("storage.segment.write")) {
    switch (fault->mode) {
      case fault::Mode::kCrash:
        throw fault::CrashException{"storage.segment.write"};
      case fault::Mode::kBitFlip: {
        // Silent media corruption: the damaged frame lands and renames;
        // only the read-side CRC can tell.
        const std::size_t bit = fault->bit % (frame.size() * 8);
        frame[bit / 8] ^= static_cast<char>(1u << (bit % 8));
        break;
      }
      case fault::Mode::kTornWrite:
        // A tail of the frame silently never reaches the medium (torn
        // DMA, lying disk cache) — but the rename still completes.
        torn = true;
        break;
      case fault::Mode::kErrorReturn:
      default:
        SetError(error, "segment write: injected failure");
        return false;
    }
  }
  std::size_t write_len = frame.size();
  if (torn) {
    write_len = std::clamp<std::size_t>(
        static_cast<std::size_t>(0.5 * static_cast<double>(frame.size())), 1,
        frame.size() - 1);
  }

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    SetError(error, "segment open " + tmp + ": " + std::strerror(errno));
    return false;
  }
  if (!WriteAll(fd, frame.data(), write_len, error)) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::fsync(fd) != 0) {
    SetError(error, std::string("segment fsync: ") + std::strerror(errno));
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    SetError(error, "segment rename to " + path + ": " + std::strerror(errno));
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<std::string> ReadSegmentFile(const std::string& path,
                                           std::string* error) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    SetError(error, "segment open " + path + ": " + std::strerror(errno));
    return std::nullopt;
  }
  std::string data;
  char buf[1 << 16];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      SetError(error, std::string("segment read: ") + std::strerror(errno));
      ::close(fd);
      return std::nullopt;
    }
    if (r == 0) break;
    data.append(buf, static_cast<std::size_t>(r));
  }
  ::close(fd);

  if (const auto fault = fault::Hit("storage.segment.read")) {
    switch (fault->mode) {
      case fault::Mode::kCrash:
        throw fault::CrashException{"storage.segment.read"};
      case fault::Mode::kErrorReturn:
        SetError(error, "segment read: injected failure");
        return std::nullopt;
      case fault::Mode::kTornWrite:
        // Model a torn tail discovered at read time.
        data.resize(data.size() / 2);
        break;
      case fault::Mode::kBitFlip:
      default:
        if (!data.empty()) {
          const std::size_t bit = fault->bit % (data.size() * 8);
          data[bit / 8] ^= static_cast<char>(1u << (bit % 8));
        }
        break;
    }
  }

  if (data.size() < kFrameHeader) {
    SetError(error, "segment " + path + ": short file");
    return std::nullopt;
  }
  const std::uint32_t len = GetU32Le(data.data());
  const std::uint32_t crc = GetU32Le(data.data() + 4);
  if (kFrameHeader + len != data.size()) {
    SetError(error, "segment " + path + ": length mismatch");
    return std::nullopt;
  }
  std::string payload = data.substr(kFrameHeader);
  if (core::Crc32c(payload) != crc) {
    SetError(error, "segment " + path + ": checksum mismatch");
    return std::nullopt;
  }
  return payload;
}

bool SegmentFileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

}  // namespace censys::storage
