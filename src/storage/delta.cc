#include "storage/delta.h"

#include "storage/serialize.h"

namespace censys::storage {

std::string Delta::Encode() const {
  std::string out;
  PutVarint(out, ops.size());
  for (const FieldOp& op : ops) {
    out.push_back(op.kind == FieldOp::Kind::kSet ? 'S' : 'R');
    PutLengthPrefixed(out, op.key);
    if (op.kind == FieldOp::Kind::kSet) PutLengthPrefixed(out, op.value);
  }
  return out;
}

std::optional<Delta> Delta::Decode(std::string_view data) {
  std::size_t pos = 0;
  const auto count = GetVarint(data, &pos);
  if (!count.has_value()) return std::nullopt;
  Delta delta;
  delta.ops.reserve(*count);
  for (std::uint64_t i = 0; i < *count; ++i) {
    if (pos >= data.size()) return std::nullopt;
    const char kind = data[pos++];
    if (kind != 'S' && kind != 'R') return std::nullopt;
    const auto key = GetLengthPrefixed(data, &pos);
    if (!key.has_value()) return std::nullopt;
    FieldOp op;
    op.key = std::string(*key);
    if (kind == 'S') {
      const auto value = GetLengthPrefixed(data, &pos);
      if (!value.has_value()) return std::nullopt;
      op.kind = FieldOp::Kind::kSet;
      op.value = std::string(*value);
    } else {
      op.kind = FieldOp::Kind::kRemove;
    }
    delta.ops.push_back(std::move(op));
  }
  if (pos != data.size()) return std::nullopt;
  return delta;
}

Delta ComputeDelta(const FieldMap& before, const FieldMap& after) {
  Delta delta;
  // Merge-walk the two sorted maps.
  auto b = before.begin();
  auto a = after.begin();
  while (b != before.end() || a != after.end()) {
    if (a == after.end() || (b != before.end() && b->first < a->first)) {
      delta.ops.push_back({FieldOp::Kind::kRemove, b->first, {}});
      ++b;
    } else if (b == before.end() || a->first < b->first) {
      delta.ops.push_back({FieldOp::Kind::kSet, a->first, a->second});
      ++a;
    } else {
      if (b->second != a->second) {
        delta.ops.push_back({FieldOp::Kind::kSet, a->first, a->second});
      }
      ++b;
      ++a;
    }
  }
  return delta;
}

void ApplyDelta(FieldMap& state, const Delta& delta) {
  for (const FieldOp& op : delta.ops) {
    if (op.kind == FieldOp::Kind::kSet) {
      state[op.key] = op.value;
    } else {
      state.erase(op.key);
    }
  }
}

}  // namespace censys::storage
