// An ordered key-value store with storage tiers.
//
// Stands in for Google Bigtable: lexicographically ordered keys, range
// scans, and per-row storage-tier placement. Censys keeps the journal tail
// and latest snapshots on SSD and migrates history to HDD (§5.2); the tier
// accounting here is what the storage benches report.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace censys::storage {

enum class Tier : std::uint8_t { kSsd = 0, kHdd = 1 };

class OrderedKv {
 public:
  void Put(std::string key, std::string value, Tier tier = Tier::kSsd);
  std::optional<std::string_view> Get(std::string_view key) const;
  bool Delete(std::string_view key);

  // Moves a row between tiers; returns false if the key does not exist.
  bool SetTier(std::string_view key, Tier tier);
  std::optional<Tier> GetTier(std::string_view key) const;

  // Visits rows with begin <= key < end in order; return false from the
  // visitor to stop early.
  void Scan(std::string_view begin, std::string_view end,
            const std::function<bool(std::string_view key,
                                     std::string_view value)>& visit) const;

  // Last row with key < bound (reverse seek), or nullopt.
  std::optional<std::pair<std::string_view, std::string_view>> SeekBefore(
      std::string_view bound) const;

  std::size_t size() const { return rows_.size(); }
  std::uint64_t bytes_on(Tier tier) const {
    return tier == Tier::kSsd ? ssd_bytes_ : hdd_bytes_;
  }
  std::uint64_t total_bytes() const { return ssd_bytes_ + hdd_bytes_; }

 private:
  struct Row {
    std::string value;
    Tier tier;
  };
  std::uint64_t RowBytes(std::string_view key, const Row& row) const {
    return key.size() + row.value.size();
  }

  std::map<std::string, Row, std::less<>> rows_;
  std::uint64_t ssd_bytes_ = 0;
  std::uint64_t hdd_bytes_ = 0;
};

// Big-endian fixed-width encoding of a sequence number so that
// lexicographic key order equals numeric order.
std::string EncodeSeqno(std::uint64_t seqno);
std::uint64_t DecodeSeqno(std::string_view encoded);

}  // namespace censys::storage
