#include "storage/journal.h"

#include <algorithm>

#include "core/strings.h"
#include "core/trace.h"
#include "storage/serialize.h"

namespace censys::storage {
namespace {

std::string EncodeEvent(EventKind kind, Timestamp at, const Delta& delta) {
  std::string out;
  out.push_back(static_cast<char>(kind));
  PutVarint(out, static_cast<std::uint64_t>(at.minutes));
  out += delta.Encode();
  return out;
}

std::optional<JournalEvent> DecodeEvent(std::uint64_t seqno,
                                        std::string_view data) {
  if (data.empty()) return std::nullopt;
  JournalEvent ev;
  ev.seqno = seqno;
  ev.kind = static_cast<EventKind>(data[0]);
  std::size_t pos = 1;
  const auto minutes = GetVarint(data, &pos);
  if (!minutes.has_value()) return std::nullopt;
  ev.at = Timestamp{static_cast<std::int64_t>(*minutes)};
  const auto delta = Delta::Decode(data.substr(pos));
  if (!delta.has_value()) return std::nullopt;
  ev.delta = *delta;
  return ev;
}

std::string EncodeSnapshot(Timestamp at, const FieldMap& fields) {
  std::string out;
  PutVarint(out, static_cast<std::uint64_t>(at.minutes));
  out += EncodeFields(fields);
  return out;
}

std::optional<std::pair<Timestamp, FieldMap>> DecodeSnapshot(
    std::string_view data) {
  std::size_t pos = 0;
  const auto minutes = GetVarint(data, &pos);
  if (!minutes.has_value()) return std::nullopt;
  const auto fields = DecodeFields(data.substr(pos));
  if (!fields.has_value()) return std::nullopt;
  return std::make_pair(Timestamp{static_cast<std::int64_t>(*minutes)},
                        *fields);
}

// Bytes one (key, value) pair contributes to EncodeFields' output.
std::size_t FieldBytes(std::string_view key, std::string_view value) {
  return VarintLength(key.size()) + key.size() + VarintLength(value.size()) +
         value.size();
}

// Recomputes EntityMeta::fields_bytes from scratch (checkpoint load only;
// the append path maintains it incrementally).
std::uint64_t SumFieldBytes(const FieldMap& fields) {
  std::uint64_t total = 0;
  for (const auto& [key, value] : fields) total += FieldBytes(key, value);
  return total;
}

}  // namespace

std::string_view ToString(EventKind k) {
  switch (k) {
    case EventKind::kServiceFound: return "service-found";
    case EventKind::kServiceChanged: return "service-changed";
    case EventKind::kServiceRemoved: return "service-removed";
    case EventKind::kEntityUpdated: return "entity-updated";
  }
  return "?";
}

EventJournal::EventJournal(Options options)
    : options_(options),
      shard_count_(std::max<std::uint32_t>(1, options.shards)),
      shards_(std::make_unique<Shard[]>(shard_count_)) {
  if (!options_.wal.dir.empty()) {
    wal_ = std::make_unique<WriteAheadLog>(options_.wal);
  }
}

EventJournal::Shard& EventJournal::ShardFor(std::string_view entity_id) const {
  // Fnv1a is stable across platforms and standard libraries, so the
  // entity -> shard assignment (and thus per-shard content) is a pure
  // function of the configuration, never of std::hash.
  return shards_[Fnv1a64(entity_id) % shard_count_];
}

std::string EventJournal::EventKey(std::string_view entity,
                                   std::uint64_t seqno) {
  std::string key = "e/";
  key += entity;
  key += '/';
  key += EncodeSeqno(seqno);
  return key;
}

std::string EventJournal::SnapshotKey(std::string_view entity,
                                      std::uint64_t seqno) {
  std::string key = "s/";
  key += entity;
  key += '/';
  key += EncodeSeqno(seqno);
  return key;
}

void EventJournal::BindMetrics(metrics::Registry* registry) {
  events_metric_ = metrics::BindCounter(registry, "censys.storage.events");
  snapshots_metric_ =
      metrics::BindCounter(registry, "censys.storage.snapshots");
  delta_bytes_metric_ =
      metrics::BindCounter(registry, "censys.storage.delta_bytes");
  snapshot_bytes_metric_ =
      metrics::BindCounter(registry, "censys.storage.snapshot_bytes");
  if (wal_ != nullptr) wal_->BindMetrics(registry);
}

std::uint64_t EventJournal::Append(std::string_view entity_id, EventKind kind,
                                   Timestamp at, const Delta& delta) {
  // A crash/WAL failure on an earlier append may have left a stale staged
  // batch behind (its pointers are long dead); drop it before staging.
  observed_.clear();
  const std::uint64_t seqno =
      ApplyEvent(entity_id, kind, at, delta, /*durable=*/true,
                 /*observe=*/true);
  NotifyObserver();
  return seqno;
}

void EventJournal::AppendBatch(std::vector<PendingEvent> events) {
  if (events.empty()) return;
  TRACE_SPAN_VAR(span, "storage", "journal.append_batch");
  span.SetArg("events", std::to_string(events.size()));

  if (wal_ != nullptr) {
    // Log the whole batch before any in-memory mutation: one contiguous
    // write, at most one fsync. The framing is per-record, so replay of a
    // batch is indistinguishable from replay of N singleton appends. The
    // entity/delta payloads move into the frames and back out afterwards —
    // the apply loop below still sees every event intact.
    std::vector<WalRecord> records;
    records.reserve(events.size());
    std::vector<PendingEvent*> framed;
    framed.reserve(events.size());
    for (PendingEvent& ev : events) {
      if (ev.delta.empty() && ev.kind == EventKind::kEntityUpdated) continue;
      WalRecord record;
      record.entity = std::move(ev.entity_id);
      record.kind = static_cast<std::uint8_t>(ev.kind);
      record.at = ev.at;
      record.delta = std::move(ev.delta);
      records.push_back(std::move(record));
      framed.push_back(&ev);
    }
    if (!records.empty()) {
      std::string error;
      if (!wal_->AppendBatch(records, &error)) {
        throw WalIoError(error.empty() ? "wal batch append failed" : error);
      }
    }
    for (std::size_t i = 0; i < framed.size(); ++i) {
      framed[i]->entity_id = std::move(records[i].entity);
      framed[i]->delta = std::move(records[i].delta);
    }
  }
  observed_.clear();
  for (const PendingEvent& ev : events) {
    ApplyEvent(ev.entity_id, ev.kind, ev.at, ev.delta, /*durable=*/false,
               /*observe=*/true);
  }
  // Deliver while `events` is still alive: the staged AppliedEvents alias
  // its entity ids and deltas.
  NotifyObserver();
}

void EventJournal::NotifyObserver() {
  if (observed_.empty()) return;
  if (observer_) observer_(observed_);
  observed_.clear();
}

std::uint64_t EventJournal::ApplyEvent(std::string_view entity_id,
                                       EventKind kind, Timestamp at,
                                       const Delta& delta, bool durable,
                                       bool observe) {
  // Whichever thread appends is the command thread: CurrentState pointer
  // holders must be on it (debug builds enforce this).
  command_role_.AdoptCurrentThread();
  Shard& shard = ShardFor(entity_id);
  const core::MutexLock lock(shard.mu);
  EntityMeta& meta = shard.meta[std::string(entity_id)];
  if (delta.empty() && kind == EventKind::kEntityUpdated) {
    return meta.next_seqno;  // no-op refresh: nothing journaled
  }

  if (durable && wal_ != nullptr) {
    // Log before any in-memory mutation (lock order: shard.mu -> wal mu).
    // A failed log append leaves this journal exactly as it was: the
    // event is either durable *and* applied, or neither.
    WalRecord record;
    record.entity = std::string(entity_id);
    record.kind = static_cast<std::uint8_t>(kind);
    record.at = at;
    record.delta = delta;
    std::string error;
    if (!wal_->Append(record, &error)) {
      throw WalIoError(error.empty() ? "wal append failed" : error);
    }
  }

  const std::uint64_t seqno = meta.next_seqno++;
  // Maintain the encoded-fields byte count per op (using the pre-apply
  // values of touched keys) instead of re-encoding the whole entity — the
  // old EncodeFields(meta.current) here was O(entity) per append and a
  // measurable serial-commit cost on large hosts.
  for (const FieldOp& op : delta.ops) {
    const auto it = meta.current.find(op.key);
    if (it != meta.current.end()) {
      meta.fields_bytes -= FieldBytes(it->first, it->second);
    }
    if (op.kind == FieldOp::Kind::kSet) {
      meta.fields_bytes += FieldBytes(op.key, op.value);
    }
  }
  ApplyDelta(meta.current, delta);

  const std::string encoded = EncodeEvent(kind, at, delta);
  delta_bytes_.fetch_add(encoded.size(), std::memory_order_relaxed);
  delta_bytes_metric_.Add(encoded.size());
  full_bytes_equivalent_.fetch_add(
      VarintLength(meta.current.size()) + meta.fields_bytes + 10,
      std::memory_order_relaxed);
  shard.table.Put(EventKey(entity_id, seqno), encoded, Tier::kSsd);
  event_count_.fetch_add(1, std::memory_order_relaxed);
  events_metric_.Add();
  ++meta.events_since_snapshot;

  if (meta.events_since_snapshot >= options_.snapshot_every) {
    WriteSnapshot(shard, entity_id, meta, at);
  }
  if (observe && observer_) {
    // `delta` and `entity_id` belong to the caller and outlive the
    // enclosing Append/AppendBatch; `meta.current` is a node in the
    // shard's meta map (stable across rehash, command-thread mutated).
    observed_.push_back(
        AppliedEvent{entity_id, seqno, kind, at, &delta, &meta.current});
  }
  return seqno;
}

void EventJournal::WriteSnapshot(Shard& shard, std::string_view entity_id,
                                 EntityMeta& meta, Timestamp at) {
  TRACE_SPAN("storage", "journal.snapshot");
  const std::uint64_t snapshot_seqno = meta.next_seqno;  // covers < seqno
  const std::string encoded = EncodeSnapshot(at, meta.current);
  snapshot_bytes_.fetch_add(encoded.size(), std::memory_order_relaxed);
  snapshot_bytes_metric_.Add(encoded.size());
  shard.table.Put(SnapshotKey(entity_id, snapshot_seqno), encoded, Tier::kSsd);
  snapshot_count_.fetch_add(1, std::memory_order_relaxed);
  snapshots_metric_.Add();

  if (options_.auto_tier && meta.has_snapshot) {
    // "Censys migrates journal events and historical snapshots prior to the
    // latest snapshot from SSD-backed tables to HDD-backed tables."
    shard.table.Scan(EventKey(entity_id, 0),
                     EventKey(entity_id, snapshot_seqno),
                     [&](std::string_view key, std::string_view) {
                       shard.table.SetTier(key, Tier::kHdd);
                       return true;
                     });
    shard.table.Scan(SnapshotKey(entity_id, 0),
                     SnapshotKey(entity_id, snapshot_seqno),
                     [&](std::string_view key, std::string_view) {
                       shard.table.SetTier(key, Tier::kHdd);
                       return true;
                     });
  }
  meta.has_snapshot = true;
  meta.last_snapshot_seqno = snapshot_seqno;
  meta.events_since_snapshot = 0;
}

const FieldMap* EventJournal::CurrentState(std::string_view entity_id) const {
  command_role_.AssertHeld();
  Shard& shard = ShardFor(entity_id);
  const core::ReaderLock lock(shard.mu);
  const auto it = shard.meta.find(std::string(entity_id));
  if (it == shard.meta.end()) return nullptr;
  return &it->second.current;
}

std::optional<VersionedState> EventJournal::SnapshotState(
    std::string_view entity_id) const {
  Shard& shard = ShardFor(entity_id);
  const core::ReaderLock lock(shard.mu);
  const auto it = shard.meta.find(std::string(entity_id));
  if (it == shard.meta.end()) return std::nullopt;
  return VersionedState{it->second.current, it->second.next_seqno};
}

std::uint64_t EventJournal::Watermark(std::string_view entity_id) const {
  Shard& shard = ShardFor(entity_id);
  const core::ReaderLock lock(shard.mu);
  const auto it = shard.meta.find(std::string(entity_id));
  return it == shard.meta.end() ? 0 : it->second.next_seqno;
}

std::optional<FieldMap> EventJournal::ReconstructAt(std::string_view entity_id,
                                                    Timestamp at) const {
  TRACE_SPAN("storage", "journal.reconstruct");
  Shard& shard = ShardFor(entity_id);
  const core::ReaderLock lock(shard.mu);

  // Find the latest snapshot taken at or before `at`.
  FieldMap state;
  std::uint64_t replay_from = 0;
  bool any = false;

  shard.table.Scan(SnapshotKey(entity_id, 0),
                   SnapshotKey(entity_id, ~std::uint64_t{0}),
                   [&](std::string_view key, std::string_view value) {
                     const auto snap = DecodeSnapshot(value);
                     if (!snap.has_value()) return true;
                     if (snap->first > at) return false;  // later snapshots too
                     state = snap->second;
                     replay_from = DecodeSeqno(key.substr(key.size() - 8));
                     any = true;
                     return true;
                   });

  // Replay events in (replay_from, ...] with time <= at.
  std::uint64_t replayed = 0;
  shard.table.Scan(EventKey(entity_id, replay_from),
                   EventKey(entity_id, ~std::uint64_t{0}),
                   [&](std::string_view key, std::string_view value) {
                     const std::uint64_t seqno =
                         DecodeSeqno(key.substr(key.size() - 8));
                     const auto ev = DecodeEvent(seqno, value);
                     if (!ev.has_value()) return true;
                     if (ev->at > at) return false;
                     ApplyDelta(state, ev->delta);
                     any = true;
                     ++replayed;
                     return true;
                   });
  // Lock-free max: replays race with each other, never with the data above.
  std::uint64_t seen = max_replay_.load(std::memory_order_relaxed);
  while (replayed > seen &&
         !max_replay_.compare_exchange_weak(seen, replayed,
                                            std::memory_order_relaxed)) {
  }
  if (!any) return std::nullopt;
  return state;
}

std::vector<JournalEvent> EventJournal::History(
    std::string_view entity_id) const {
  Shard& shard = ShardFor(entity_id);
  const core::ReaderLock lock(shard.mu);
  std::vector<JournalEvent> events;
  shard.table.Scan(EventKey(entity_id, 0),
                   EventKey(entity_id, ~std::uint64_t{0}),
                   [&](std::string_view key, std::string_view value) {
                     const std::uint64_t seqno =
                         DecodeSeqno(key.substr(key.size() - 8));
                     if (const auto ev = DecodeEvent(seqno, value)) {
                       events.push_back(*ev);
                     }
                     return true;
                   });
  return events;
}

std::vector<std::string> EventJournal::EntityIds() const {
  std::vector<std::string> ids;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    const core::ReaderLock lock(shards_[s].mu);
    // censyslint:allow(unordered-iter): ids are sorted below before return
    for (const auto& [id, meta] : shards_[s].meta) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

void EventJournal::ForEachEntity(
    const std::function<void(std::string_view, const FieldMap&)>& fn) const {
  // Enumerate in sorted-id order so callers (index rebuilds, digests,
  // exports) never observe hash-map layout. The per-id re-lookup keeps the
  // shard lock held only around each callback, same as the old contract.
  for (const std::string& id : EntityIds()) {
    Shard& shard = ShardFor(id);
    const core::ReaderLock lock(shard.mu);
    const auto it = shard.meta.find(id);
    if (it != shard.meta.end()) fn(id, it->second.current);
  }
}

void EventJournal::ScanAll(
    const std::function<bool(std::string_view, std::string_view)>& visit)
    const {
  // Copy out per shard, then merge-sort into the canonical single-table
  // order. Not a hot path: digests, dumps, and growth accounting only.
  std::vector<std::pair<std::string, std::string>> rows;
  rows.reserve(RowCount());
  for (std::size_t s = 0; s < shard_count_; ++s) {
    const core::ReaderLock lock(shards_[s].mu);
    shards_[s].table.Scan("", "",
                          [&](std::string_view key, std::string_view value) {
                            rows.emplace_back(key, value);
                            return true;
                          });
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [key, value] : rows) {
    if (!visit(key, value)) return;
  }
}

std::size_t EventJournal::RowCount() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    const core::ReaderLock lock(shards_[s].mu);
    total += shards_[s].table.size();
  }
  return total;
}

std::uint64_t EventJournal::bytes_on(Tier tier) const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    const core::ReaderLock lock(shards_[s].mu);
    total += shards_[s].table.bytes_on(tier);
  }
  return total;
}

namespace {
constexpr std::uint64_t kCheckpointFormat = 1;
}  // namespace

std::string EventJournal::EncodeCheckpoint(std::uint64_t lsn) const {
  std::string out;
  PutVarint(out, kCheckpointFormat);
  PutVarint(out, lsn);
  PutVarint(out, event_count_.load(std::memory_order_relaxed));
  PutVarint(out, snapshot_count_.load(std::memory_order_relaxed));
  PutVarint(out, delta_bytes_.load(std::memory_order_relaxed));
  PutVarint(out, snapshot_bytes_.load(std::memory_order_relaxed));
  PutVarint(out, full_bytes_equivalent_.load(std::memory_order_relaxed));

  // Entity metadata, sorted by id so equal journals encode identically.
  std::vector<std::pair<std::string, EntityMeta>> entities;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    const core::ReaderLock lock(shards_[s].mu);
    // censyslint:allow(unordered-iter): collected then sorted by id below
    for (const auto& [id, meta] : shards_[s].meta) {
      entities.emplace_back(id, meta);
    }
  }
  std::sort(entities.begin(), entities.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  PutVarint(out, entities.size());
  for (const auto& [id, meta] : entities) {
    PutLengthPrefixed(out, id);
    PutVarint(out, meta.next_seqno);
    PutVarint(out, meta.last_snapshot_seqno);
    out.push_back(meta.has_snapshot ? 1 : 0);
    PutVarint(out, meta.events_since_snapshot);
    PutLengthPrefixed(out, EncodeFields(meta.current));
  }

  // Every table row in canonical key order, with its storage tier.
  std::vector<std::tuple<std::string, std::string, std::uint8_t>> rows;
  rows.reserve(RowCount());
  for (std::size_t s = 0; s < shard_count_; ++s) {
    const core::ReaderLock lock(shards_[s].mu);
    shards_[s].table.Scan(
        "", "", [&](std::string_view key, std::string_view value) {
          const auto tier = shards_[s].table.GetTier(key);
          rows.emplace_back(
              std::string(key), std::string(value),
              static_cast<std::uint8_t>(tier.value_or(Tier::kSsd)));
          return true;
        });
  }
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return std::get<0>(a) < std::get<0>(b);
  });
  PutVarint(out, rows.size());
  for (const auto& [key, value, tier] : rows) {
    PutLengthPrefixed(out, key);
    PutLengthPrefixed(out, value);
    out.push_back(static_cast<char>(tier));
  }
  return out;
}

bool EventJournal::LoadCheckpoint(std::string_view payload,
                                  std::uint64_t expect_lsn) {
  std::size_t pos = 0;
  const auto format = GetVarint(payload, &pos);
  if (!format.has_value() || *format != kCheckpointFormat) return false;
  const auto lsn = GetVarint(payload, &pos);
  if (!lsn.has_value() || *lsn != expect_lsn) return false;
  const auto events = GetVarint(payload, &pos);
  const auto snapshots = GetVarint(payload, &pos);
  const auto dbytes = GetVarint(payload, &pos);
  const auto sbytes = GetVarint(payload, &pos);
  const auto fbytes = GetVarint(payload, &pos);
  if (!events || !snapshots || !dbytes || !sbytes || !fbytes) return false;

  const auto entity_count = GetVarint(payload, &pos);
  if (!entity_count.has_value()) return false;
  for (std::uint64_t i = 0; i < *entity_count; ++i) {
    const auto id = GetLengthPrefixed(payload, &pos);
    const auto next_seqno = GetVarint(payload, &pos);
    const auto last_snapshot = GetVarint(payload, &pos);
    if (!id || !next_seqno || !last_snapshot || pos >= payload.size()) {
      return false;
    }
    const bool has_snapshot = payload[pos++] != 0;
    const auto since = GetVarint(payload, &pos);
    const auto fields_bytes = GetLengthPrefixed(payload, &pos);
    if (!since || !fields_bytes) return false;
    const auto fields = DecodeFields(*fields_bytes);
    if (!fields.has_value()) return false;
    EntityMeta meta;
    meta.next_seqno = *next_seqno;
    meta.last_snapshot_seqno = *last_snapshot;
    meta.has_snapshot = has_snapshot;
    meta.events_since_snapshot = static_cast<std::uint32_t>(*since);
    meta.current = *fields;
    meta.fields_bytes = SumFieldBytes(meta.current);
    Shard& shard = ShardFor(*id);
    const core::MutexLock lock(shard.mu);
    shard.meta[std::string(*id)] = std::move(meta);
  }

  const auto row_count = GetVarint(payload, &pos);
  if (!row_count.has_value()) return false;
  for (std::uint64_t i = 0; i < *row_count; ++i) {
    const auto key = GetLengthPrefixed(payload, &pos);
    const auto value = GetLengthPrefixed(payload, &pos);
    if (!key || !value || pos >= payload.size()) return false;
    const std::uint8_t tier = static_cast<std::uint8_t>(payload[pos++]);
    // Keys are "e/<entity>/<8-byte seqno>" or "s/...": recover the entity
    // to route the row back to its shard.
    if (key->size() < 12 || ((*key)[0] != 'e' && (*key)[0] != 's') ||
        (*key)[1] != '/' || tier > 1) {
      return false;
    }
    const std::string_view entity = key->substr(2, key->size() - 11);
    Shard& shard = ShardFor(entity);
    const core::MutexLock lock(shard.mu);
    shard.table.Put(std::string(*key), std::string(*value),
                    static_cast<Tier>(tier));
  }
  if (pos != payload.size()) return false;

  event_count_.store(*events, std::memory_order_relaxed);
  snapshot_count_.store(*snapshots, std::memory_order_relaxed);
  delta_bytes_.store(*dbytes, std::memory_order_relaxed);
  snapshot_bytes_.store(*sbytes, std::memory_order_relaxed);
  full_bytes_equivalent_.store(*fbytes, std::memory_order_relaxed);
  return true;
}

std::string EventJournal::EncodeReplicaSnapshot(std::uint64_t lsn) const {
  return EncodeCheckpoint(lsn);
}

bool EventJournal::LoadReplicaSnapshot(std::string_view payload,
                                       std::uint64_t lsn) {
  const auto reset_in_place = [&] {
    for (std::size_t s = 0; s < shard_count_; ++s) {
      const core::MutexLock lock(shards_[s].mu);
      shards_[s].meta.clear();
      shards_[s].table = OrderedKv{};
    }
    event_count_.store(0, std::memory_order_relaxed);
    snapshot_count_.store(0, std::memory_order_relaxed);
    delta_bytes_.store(0, std::memory_order_relaxed);
    snapshot_bytes_.store(0, std::memory_order_relaxed);
    full_bytes_equivalent_.store(0, std::memory_order_relaxed);
    max_replay_.store(0, std::memory_order_relaxed);
  };
  reset_in_place();
  if (!LoadCheckpoint(payload, lsn)) {
    reset_in_place();  // LoadCheckpoint may have partially applied
    return false;
  }
  return true;
}

std::uint64_t EventJournal::ApplyReplicated(const WalRecord& record) {
  return ApplyEvent(record.entity, static_cast<EventKind>(record.kind),
                    record.at, record.delta, /*durable=*/false,
                    /*observe=*/false);
}

std::optional<std::uint64_t> EventJournal::Checkpoint(std::string* error) {
  if (wal_ == nullptr) {
    if (error != nullptr) *error = "journal has no WAL configured";
    return std::nullopt;
  }
  std::string err;
  if (!wal_->Open(&err)) {
    if (error != nullptr) *error = err;
    return std::nullopt;
  }
  const std::uint64_t lsn = wal_->last_lsn();
  const std::string payload = EncodeCheckpoint(lsn);
  if (!wal_->WriteCheckpoint(lsn, payload, &err)) {
    if (error != nullptr) *error = err;
    return std::nullopt;
  }
  return lsn;
}

RecoveryReport EventJournal::Recover() {
  TRACE_SPAN("storage", "journal.recover");
  RecoveryReport report;
  if (wal_ == nullptr) {
    report.error = "journal has no WAL configured";
    return report;
  }

  const auto reset = [&] {
    shards_ = std::make_unique<Shard[]>(shard_count_);
    event_count_.store(0, std::memory_order_relaxed);
    snapshot_count_.store(0, std::memory_order_relaxed);
    delta_bytes_.store(0, std::memory_order_relaxed);
    snapshot_bytes_.store(0, std::memory_order_relaxed);
    full_bytes_equivalent_.store(0, std::memory_order_relaxed);
    max_replay_.store(0, std::memory_order_relaxed);
  };
  reset();

  std::string error;
  if (!wal_->Open(&error)) {
    report.error = error;
    return report;
  }

  // Newest checkpoint that validates and parses wins; corrupt or torn
  // ones fall back to older, then to empty-state full replay.
  std::uint64_t checkpoint_lsn = 0;
  for (const std::uint64_t lsn : wal_->ListCheckpoints()) {
    const auto payload = wal_->ReadCheckpoint(lsn);
    if (payload.has_value() && LoadCheckpoint(*payload, lsn)) {
      checkpoint_lsn = lsn;
      break;
    }
    ++report.checkpoints_rejected;
    reset();  // LoadCheckpoint may have partially applied
  }
  report.checkpoint_lsn = checkpoint_lsn;
  // If tail truncation cut the log below the checkpoint, future appends
  // must still get fresh LSNs beyond what the checkpoint covers.
  wal_->ReserveLsnsThrough(checkpoint_lsn);

  WriteAheadLog::ReplayStats stats;
  const bool ok = wal_->Replay(
      checkpoint_lsn,
      [&](const WalRecord& record) {
        ApplyEvent(record.entity, static_cast<EventKind>(record.kind),
                   record.at, record.delta, /*durable=*/false,
                   /*observe=*/false);
      },
      &stats, &error);
  if (!ok) {
    report.error = error;
    return report;
  }
  report.replayed_records = stats.records;
  report.truncated_bytes = wal_->truncated_bytes();
  report.corrupt_records = wal_->corrupt_records();
  report.recovered_events = event_count();
  report.ok = true;
  return report;
}

}  // namespace censys::storage
