#include "storage/journal.h"

#include "storage/serialize.h"

namespace censys::storage {
namespace {

std::string EncodeEvent(EventKind kind, Timestamp at, const Delta& delta) {
  std::string out;
  out.push_back(static_cast<char>(kind));
  PutVarint(out, static_cast<std::uint64_t>(at.minutes));
  out += delta.Encode();
  return out;
}

std::optional<JournalEvent> DecodeEvent(std::uint64_t seqno,
                                        std::string_view data) {
  if (data.empty()) return std::nullopt;
  JournalEvent ev;
  ev.seqno = seqno;
  ev.kind = static_cast<EventKind>(data[0]);
  std::size_t pos = 1;
  const auto minutes = GetVarint(data, &pos);
  if (!minutes.has_value()) return std::nullopt;
  ev.at = Timestamp{static_cast<std::int64_t>(*minutes)};
  const auto delta = Delta::Decode(data.substr(pos));
  if (!delta.has_value()) return std::nullopt;
  ev.delta = *delta;
  return ev;
}

std::string EncodeSnapshot(Timestamp at, const FieldMap& fields) {
  std::string out;
  PutVarint(out, static_cast<std::uint64_t>(at.minutes));
  out += EncodeFields(fields);
  return out;
}

std::optional<std::pair<Timestamp, FieldMap>> DecodeSnapshot(
    std::string_view data) {
  std::size_t pos = 0;
  const auto minutes = GetVarint(data, &pos);
  if (!minutes.has_value()) return std::nullopt;
  const auto fields = DecodeFields(data.substr(pos));
  if (!fields.has_value()) return std::nullopt;
  return std::make_pair(Timestamp{static_cast<std::int64_t>(*minutes)},
                        *fields);
}

}  // namespace

std::string_view ToString(EventKind k) {
  switch (k) {
    case EventKind::kServiceFound: return "service-found";
    case EventKind::kServiceChanged: return "service-changed";
    case EventKind::kServiceRemoved: return "service-removed";
    case EventKind::kEntityUpdated: return "entity-updated";
  }
  return "?";
}

std::string EventJournal::EventKey(std::string_view entity,
                                   std::uint64_t seqno) {
  std::string key = "e/";
  key += entity;
  key += '/';
  key += EncodeSeqno(seqno);
  return key;
}

std::string EventJournal::SnapshotKey(std::string_view entity,
                                      std::uint64_t seqno) {
  std::string key = "s/";
  key += entity;
  key += '/';
  key += EncodeSeqno(seqno);
  return key;
}

void EventJournal::BindMetrics(metrics::Registry* registry) {
  events_metric_ = metrics::BindCounter(registry, "censys.storage.events");
  snapshots_metric_ =
      metrics::BindCounter(registry, "censys.storage.snapshots");
  delta_bytes_metric_ =
      metrics::BindCounter(registry, "censys.storage.delta_bytes");
  snapshot_bytes_metric_ =
      metrics::BindCounter(registry, "censys.storage.snapshot_bytes");
}

std::uint64_t EventJournal::Append(std::string_view entity_id, EventKind kind,
                                   Timestamp at, const Delta& delta) {
  EntityMeta& meta = meta_[std::string(entity_id)];
  if (delta.empty() && kind == EventKind::kEntityUpdated) {
    return meta.next_seqno;  // no-op refresh: nothing journaled
  }
  const std::uint64_t seqno = meta.next_seqno++;
  ApplyDelta(meta.current, delta);

  const std::string encoded = EncodeEvent(kind, at, delta);
  delta_bytes_ += encoded.size();
  delta_bytes_metric_.Add(encoded.size());
  full_bytes_equivalent_ += EncodeFields(meta.current).size() + 10;
  table_.Put(EventKey(entity_id, seqno), encoded, Tier::kSsd);
  ++event_count_;
  events_metric_.Add();
  ++meta.events_since_snapshot;

  if (meta.events_since_snapshot >= options_.snapshot_every) {
    WriteSnapshot(entity_id, meta, at);
  }
  return seqno;
}

void EventJournal::WriteSnapshot(std::string_view entity_id, EntityMeta& meta,
                                 Timestamp at) {
  const std::uint64_t snapshot_seqno = meta.next_seqno;  // covers < seqno
  const std::string encoded = EncodeSnapshot(at, meta.current);
  snapshot_bytes_ += encoded.size();
  snapshot_bytes_metric_.Add(encoded.size());
  table_.Put(SnapshotKey(entity_id, snapshot_seqno), encoded, Tier::kSsd);
  ++snapshot_count_;
  snapshots_metric_.Add();

  if (options_.auto_tier && meta.has_snapshot) {
    // "Censys migrates journal events and historical snapshots prior to the
    // latest snapshot from SSD-backed tables to HDD-backed tables."
    table_.Scan(EventKey(entity_id, 0), EventKey(entity_id, snapshot_seqno),
                [&](std::string_view key, std::string_view) {
                  table_.SetTier(key, Tier::kHdd);
                  return true;
                });
    table_.Scan(SnapshotKey(entity_id, 0),
                SnapshotKey(entity_id, snapshot_seqno),
                [&](std::string_view key, std::string_view) {
                  table_.SetTier(key, Tier::kHdd);
                  return true;
                });
  }
  meta.has_snapshot = true;
  meta.last_snapshot_seqno = snapshot_seqno;
  meta.events_since_snapshot = 0;
}

const FieldMap* EventJournal::CurrentState(std::string_view entity_id) const {
  const auto it = meta_.find(std::string(entity_id));
  if (it == meta_.end()) return nullptr;
  return &it->second.current;
}

std::optional<FieldMap> EventJournal::ReconstructAt(std::string_view entity_id,
                                                    Timestamp at) const {
  // Find the latest snapshot taken at or before `at`.
  FieldMap state;
  std::uint64_t replay_from = 0;
  bool any = false;

  table_.Scan(SnapshotKey(entity_id, 0),
              SnapshotKey(entity_id, ~std::uint64_t{0}),
              [&](std::string_view key, std::string_view value) {
                const auto snap = DecodeSnapshot(value);
                if (!snap.has_value()) return true;
                if (snap->first > at) return false;  // later snapshots too
                state = snap->second;
                replay_from = DecodeSeqno(key.substr(key.size() - 8));
                any = true;
                return true;
              });

  // Replay events in (replay_from, ...] with time <= at.
  std::uint64_t replayed = 0;
  table_.Scan(EventKey(entity_id, replay_from),
              EventKey(entity_id, ~std::uint64_t{0}),
              [&](std::string_view key, std::string_view value) {
                const std::uint64_t seqno =
                    DecodeSeqno(key.substr(key.size() - 8));
                const auto ev = DecodeEvent(seqno, value);
                if (!ev.has_value()) return true;
                if (ev->at > at) return false;
                ApplyDelta(state, ev->delta);
                any = true;
                ++replayed;
                return true;
              });
  if (replayed > max_replay_) max_replay_ = replayed;
  if (!any) return std::nullopt;
  return state;
}

std::vector<JournalEvent> EventJournal::History(
    std::string_view entity_id) const {
  std::vector<JournalEvent> events;
  table_.Scan(EventKey(entity_id, 0), EventKey(entity_id, ~std::uint64_t{0}),
              [&](std::string_view key, std::string_view value) {
                const std::uint64_t seqno =
                    DecodeSeqno(key.substr(key.size() - 8));
                if (const auto ev = DecodeEvent(seqno, value)) {
                  events.push_back(*ev);
                }
                return true;
              });
  return events;
}

std::vector<std::string> EventJournal::EntityIds() const {
  std::vector<std::string> ids;
  ids.reserve(meta_.size());
  for (const auto& [id, meta] : meta_) ids.push_back(id);
  return ids;
}

void EventJournal::ForEachEntity(
    const std::function<void(std::string_view, const FieldMap&)>& fn) const {
  for (const auto& [id, meta] : meta_) fn(id, meta.current);
}

}  // namespace censys::storage
