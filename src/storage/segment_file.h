// Crash-safe single-blob segment files for the columnar analytics tier.
//
// A segment file is one CRC-framed payload:
//
//   [u32 payload_len][u32 crc32c(payload)][payload]     (little-endian)
//
// written with the checkpoint idiom: the frame lands in `path + ".tmp"`,
// is fsynced, and is renamed over `path`, so a reader never observes a
// half-written destination — the file either holds the complete old
// frame, the complete new frame, or does not exist. Validation is the
// reader's job: a short file, length mismatch, or CRC mismatch reads as
// corrupt (nullopt), never as a wrong payload.
//
// Fault injection points (core/fault.h):
//   "storage.segment.write"  kErrorReturn fails the write cleanly;
//                            kCrash throws CrashException; kBitFlip and
//                            kTornWrite model silent media corruption —
//                            the damaged frame still lands and renames,
//                            and the CRC catches it at read time.
//   "storage.segment.read"   kErrorReturn fails the read; kBitFlip flips
//                            a bit of the read buffer; kTornWrite
//                            truncates the buffer (torn tail); kCrash
//                            throws.
//
// This lives in src/storage/ because raw file IO anywhere else in src/
// is a censyslint violation; the dictionary/RLE encoding layered on top
// belongs to src/query/columnar.h.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace censys::storage {

// Durably writes `payload` framed + tmp+renamed to `path`. Returns false
// with *error set on failure (the destination is untouched).
bool WriteSegmentFile(const std::string& path, std::string_view payload,
                      std::string* error);

// Reads and validates a segment file. Returns the payload, or nullopt
// with *error set when the file is missing, short, misframed, or fails
// its checksum.
std::optional<std::string> ReadSegmentFile(const std::string& path,
                                           std::string* error);

// Whether a segment exists at `path` (no validation — lets callers tell
// "never built" apart from "built but unreadable/corrupt").
bool SegmentFileExists(const std::string& path);

}  // namespace censys::storage
