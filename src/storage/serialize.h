// Binary serialization of field maps.
//
// Scan results move through the pipeline as serialized records ("enqueued
// ... as serialized Protobuf objects", §4.2). We use a compact
// length-prefixed encoding with varints — the same wire-level idea —
// because journal storage cost (the 500 TB/yr figure of §5.2) is one of the
// quantities the storage benches measure.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace censys::storage {

// LEB128-style unsigned varint.
void PutVarint(std::string& out, std::uint64_t value);
// Encoded size of `value` as a varint, without materializing it. Lets the
// journal maintain its full-encoding byte accounting incrementally (O(delta
// ops) per append instead of re-encoding the whole entity).
std::size_t VarintLength(std::uint64_t value);
// Returns the decoded value and advances *pos; nullopt on truncation.
std::optional<std::uint64_t> GetVarint(std::string_view data, std::size_t* pos);

void PutLengthPrefixed(std::string& out, std::string_view value);
std::optional<std::string_view> GetLengthPrefixed(std::string_view data,
                                                  std::size_t* pos);

// Encodes a field map as count + (key, value) pairs, keys sorted (std::map
// order), so equal maps have byte-identical encodings.
std::string EncodeFields(const std::map<std::string, std::string>& fields);
std::optional<std::map<std::string, std::string>> DecodeFields(
    std::string_view data);

}  // namespace censys::storage
