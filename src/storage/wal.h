// Crash-consistent write-ahead log for the event journal (§5.2 made
// durable).
//
// The in-memory EventJournal is the paper's Bigtable stand-in; this WAL is
// what makes a crash survivable: every journaled event is first appended
// here as a length-prefixed, CRC32C-checksummed record in a rotating
// sequence of segment files, and EventJournal::Recover() rebuilds a
// byte-identical journal from (latest valid checkpoint) + (WAL tail
// replay). Recovery is tolerant by construction — a torn or corrupt
// record truncates the log at that point instead of aborting, so the
// journal always restarts from the longest durable prefix.
//
// On-disk layout under `dir`:
//
//   wal-00000000.log            segment 0
//   wal-00000001.log            segment 1 (rotated at ~segment_bytes)
//   ...
//   ckpt-<lsn 20 digits>.snap   full-state checkpoints (tmp+rename)
//
// Record framing (all integers little-endian):
//
//   [u32 payload_len][u32 crc32c(payload)][payload]
//   payload := varint lsn | u8 kind | varint at_minutes
//              | lp(entity_id) | lp(delta_encoding)
//
// LSNs are assigned contiguously from 1 by Append; a checkpoint file
// carries the LSN it covers, so replay starts strictly after it.
//
// Fault injection points (core/fault.h): "storage.wal.append" (record and
// checkpoint writes; error-return / torn-write / bit-flip / crash),
// "storage.wal.fsync" (error-return / crash), "storage.wal.read" (replay:
// bit-flip / error-return / crash). Torn writes and crashes throw
// fault::CrashException, the SIGKILL stand-in the torture tests catch.
//
// Concurrency: one mutex serializes Append/Sync/rotation and LSN
// assignment; journal shards may append concurrently. Replay/Open are
// startup-only and must not race appends. Counters are relaxed atomics.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/metrics.h"
#include "core/thread_safety.h"
#include "core/types.h"
#include "storage/delta.h"

namespace censys::storage {

enum class EventKind : std::uint8_t;

// One logical journal append, as logged.
struct WalRecord {
  std::uint64_t lsn = 0;
  std::string entity;
  std::uint8_t kind = 0;  // EventKind, kept raw so wal.h need not see it
  Timestamp at;
  Delta delta;
};

// Encodes/decodes the record *payload* (no framing). Decode returns
// nullopt on any truncation or trailing garbage.
std::string EncodeWalPayload(const WalRecord& record);
std::optional<WalRecord> DecodeWalPayload(std::string_view payload);

class WriteAheadLog {
 public:
  struct Options {
    // Directory for segments + checkpoints; empty disables the WAL.
    std::string dir;
    // Rotate to a new segment once the current one reaches this size.
    std::uint64_t segment_bytes = 4u << 20;
    // fsync after every append (durability over throughput). Off by
    // default: the simulated crash model is process death, not power
    // loss, and Sync() is still called on rotation and checkpoint.
    bool fsync_each = false;
    // Checkpoints retained on disk (older ones are pruned after a new
    // checkpoint lands).
    std::uint32_t keep_checkpoints = 2;
  };

  struct ReplayStats {
    std::uint64_t records = 0;         // delivered to the visitor
    std::uint64_t skipped = 0;         // valid but lsn <= from_lsn
    std::uint64_t corrupt_records = 0; // CRC/decode failures (tail cut)
    std::uint64_t truncated_bytes = 0; // bytes dropped at torn tails
  };

  explicit WriteAheadLog(Options options);
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  // Scans existing segments (validating every record), truncates any
  // torn/corrupt tail so the log ends on a record boundary, and positions
  // the append cursor. Creates the directory and segment 0 when empty.
  // Idempotent; Append auto-opens on first use.
  bool Open(std::string* error);

  // Appends one record, assigning its LSN. Returns false on (real or
  // injected) I/O failure — nothing is considered durable. May throw
  // fault::CrashException at the armed crash points.
  bool Append(WalRecord& record, std::string* error);

  // Group commit: appends every record as one contiguous framed write with
  // at most one fsync, assigning contiguous LSNs in order. An error-return
  // failure (real or injected, on any record) rejects the whole batch with
  // nothing written — recovery then sees the log exactly as before the
  // batch. Armed crash/torn-write faults throw after at most a prefix of
  // the batch buffer reached the medium; recovery truncates at the tear,
  // so the durable prefix is a record-aligned prefix of the batch. Record
  // framing is identical to Append's, so batching never changes replay.
  bool AppendBatch(std::vector<WalRecord>& records, std::string* error);

  // fsyncs the active segment.
  bool Sync(std::string* error);

  // Replays every valid record with lsn > from_lsn, in log order. The log
  // must be Open()ed. Returns false only on unrecoverable errors (an
  // unreadable directory); torn tails are truncated, counted, and NOT
  // errors. Segments whose records are all <= from_lsn (bounded by the
  // next segment's first LSN) are skipped without reopening their files.
  bool Replay(std::uint64_t from_lsn,
              const std::function<void(const WalRecord&)>& visit,
              ReplayStats* stats, std::string* error);

  // Read-only tail iterator for replication shipping: appends every valid
  // record with from_lsn < lsn <= end_lsn, in log order, to `out`
  // (`max_records` bounds the batch; 0 = unbounded). Unlike Open/Replay
  // this NEVER mutates the log — a torn or corrupt tail just ends the
  // read at the last whole record, so a reader can tail a log that a
  // writer is still appending to. Returns false only on unrecoverable
  // I/O errors (e.g. a segment pruned mid-read by a checkpoint; the
  // caller re-checks oldest_lsn and re-bootstraps).
  bool ReadTail(std::uint64_t from_lsn, std::uint64_t end_lsn,
                std::size_t max_records, std::vector<WalRecord>* out,
                std::string* error);

  // First LSN still present in the segment files (0 when the log holds no
  // records). Checkpoints prune covered segments, so a follower whose
  // applied LSN has fallen below oldest_lsn() - 1 cannot be caught up
  // from the tail and must re-bootstrap from a snapshot.
  std::uint64_t oldest_lsn() const;

  // Durably writes a checkpoint payload covering `lsn` (tmp + rename),
  // prunes checkpoints beyond Options::keep_checkpoints, and deletes
  // segments whose records are all covered by `lsn`.
  bool WriteCheckpoint(std::uint64_t lsn, std::string_view payload,
                       std::string* error);

  // Ensures future LSNs are assigned strictly after `lsn`. Recovery calls
  // this with the checkpoint's LSN: if tail truncation cut the log below
  // it, newly appended records must not reuse LSNs the checkpoint already
  // covers (replay would silently skip them).
  void ReserveLsnsThrough(std::uint64_t lsn) {
    std::uint64_t next = next_lsn_.load(std::memory_order_relaxed);
    while (next < lsn + 1 &&
           !next_lsn_.compare_exchange_weak(next, lsn + 1,
                                            std::memory_order_relaxed)) {
    }
  }

  // Checkpoint LSNs present on disk, newest first (CRC not yet checked —
  // ReadCheckpoint validates).
  std::vector<std::uint64_t> ListCheckpoints() const;
  // Loads and validates a checkpoint payload; nullopt when missing or
  // corrupt (the caller falls back to an older one, then to full replay).
  std::optional<std::string> ReadCheckpoint(std::uint64_t lsn) const;

  // --- accounting -------------------------------------------------------------
  std::uint64_t last_lsn() const {
    return next_lsn_.load(std::memory_order_relaxed) - 1;
  }
  std::uint64_t appended_records() const {
    return appended_records_.load(std::memory_order_relaxed);
  }
  // Group appends (AppendBatch calls that hit the medium).
  std::uint64_t batch_appends() const {
    return batch_appends_.load(std::memory_order_relaxed);
  }
  std::uint64_t appended_bytes() const {
    return appended_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t rotations() const {
    return rotations_.load(std::memory_order_relaxed);
  }
  std::uint64_t fsyncs() const {
    return fsyncs_.load(std::memory_order_relaxed);
  }
  std::uint64_t checkpoints_written() const {
    return checkpoints_written_.load(std::memory_order_relaxed);
  }
  std::uint64_t segments_removed() const {
    return segments_removed_.load(std::memory_order_relaxed);
  }
  // Bytes dropped at torn/corrupt tails (plus whole segments abandoned
  // past a corrupt record) across every scan since construction.
  std::uint64_t truncated_bytes() const {
    return truncated_bytes_.load(std::memory_order_relaxed);
  }
  // Records that failed CRC/decode validation (each one cuts the log).
  std::uint64_t corrupt_records() const {
    return corrupt_records_.load(std::memory_order_relaxed);
  }
  const Options& options() const { return options_; }

  // Registers censys.storage.wal.* instruments.
  void BindMetrics(metrics::Registry* registry);

 private:
  struct Segment {
    std::uint64_t index = 0;
    std::uint64_t first_lsn = 0;  // first lsn appended to this segment
  };

  std::string SegmentPath(std::uint64_t index) const;
  std::string CheckpointPath(std::uint64_t lsn) const;
  bool OpenLocked(std::string* error) CENSYS_REQUIRES(mu_);
  bool RotateLocked(std::string* error) CENSYS_REQUIRES(mu_);
  bool SyncLocked(std::string* error) CENSYS_REQUIRES(mu_);
  bool WriteAllLocked(const void* data, std::size_t n, std::string* error)
      CENSYS_REQUIRES(mu_);
  // Scans one segment file, delivering valid records. With `truncate`
  // set (the recovery paths), the file is cut back to the last whole
  // record and the truncation counters advance; without it (read-only
  // tail reads), an invalid record just stops the scan. Returns the
  // file's valid byte length.
  bool ScanSegment(const std::string& path, bool truncate,
                   const std::function<void(const WalRecord&)>& visit,
                   ReplayStats* stats, std::uint64_t* valid_bytes,
                   std::string* error);
  // Shared walk behind Replay and ReadTail: segments fully covered by
  // from_lsn are skipped, delivery stops past end_lsn / max_records.
  bool ScanRange(std::uint64_t from_lsn, std::uint64_t end_lsn,
                 std::size_t max_records, bool truncate,
                 const std::function<void(const WalRecord&)>& visit,
                 ReplayStats* stats, std::string* error);
  std::vector<std::uint64_t> ListSegmentIndexes() const;
  void RemoveSegmentsBelowLocked(std::uint64_t lsn) CENSYS_REQUIRES(mu_);

  Options options_;

  mutable core::Mutex mu_;
  int fd_ CENSYS_GUARDED_BY(mu_) = -1;
  bool opened_ CENSYS_GUARDED_BY(mu_) = false;
  std::uint64_t segment_offset_ CENSYS_GUARDED_BY(mu_) = 0;
  // Open segments in index order; back() is the active one.
  std::vector<Segment> segments_ CENSYS_GUARDED_BY(mu_);

  std::atomic<std::uint64_t> next_lsn_{1};
  std::atomic<std::uint64_t> appended_records_{0};
  std::atomic<std::uint64_t> batch_appends_{0};
  std::atomic<std::uint64_t> appended_bytes_{0};
  std::atomic<std::uint64_t> rotations_{0};
  std::atomic<std::uint64_t> fsyncs_{0};
  std::atomic<std::uint64_t> checkpoints_written_{0};
  std::atomic<std::uint64_t> segments_removed_{0};
  std::atomic<std::uint64_t> truncated_bytes_{0};
  std::atomic<std::uint64_t> corrupt_records_{0};

  metrics::CounterHandle appends_metric_;
  metrics::CounterHandle batch_appends_metric_;
  metrics::CounterHandle bytes_metric_;
  metrics::CounterHandle fsyncs_metric_;
  metrics::CounterHandle rotations_metric_;
  metrics::CounterHandle checkpoints_metric_;
  metrics::CounterHandle truncations_metric_;
  metrics::CounterHandle replayed_metric_;
};

}  // namespace censys::storage
