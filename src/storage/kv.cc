#include "storage/kv.h"

#include <cassert>

namespace censys::storage {

void OrderedKv::Put(std::string key, std::string value, Tier tier) {
  auto it = rows_.find(key);
  if (it != rows_.end()) {
    const std::uint64_t old_bytes = RowBytes(it->first, it->second);
    (it->second.tier == Tier::kSsd ? ssd_bytes_ : hdd_bytes_) -= old_bytes;
    it->second.value = std::move(value);
    it->second.tier = tier;
    (tier == Tier::kSsd ? ssd_bytes_ : hdd_bytes_) +=
        RowBytes(it->first, it->second);
    return;
  }
  Row row{std::move(value), tier};
  const std::uint64_t bytes = key.size() + row.value.size();
  (tier == Tier::kSsd ? ssd_bytes_ : hdd_bytes_) += bytes;
  rows_.emplace(std::move(key), std::move(row));
}

std::optional<std::string_view> OrderedKv::Get(std::string_view key) const {
  const auto it = rows_.find(key);
  if (it == rows_.end()) return std::nullopt;
  return std::string_view(it->second.value);
}

bool OrderedKv::Delete(std::string_view key) {
  const auto it = rows_.find(key);
  if (it == rows_.end()) return false;
  (it->second.tier == Tier::kSsd ? ssd_bytes_ : hdd_bytes_) -=
      RowBytes(it->first, it->second);
  rows_.erase(it);
  return true;
}

bool OrderedKv::SetTier(std::string_view key, Tier tier) {
  const auto it = rows_.find(key);
  if (it == rows_.end()) return false;
  if (it->second.tier == tier) return true;
  const std::uint64_t bytes = RowBytes(it->first, it->second);
  (it->second.tier == Tier::kSsd ? ssd_bytes_ : hdd_bytes_) -= bytes;
  it->second.tier = tier;
  (tier == Tier::kSsd ? ssd_bytes_ : hdd_bytes_) += bytes;
  return true;
}

std::optional<Tier> OrderedKv::GetTier(std::string_view key) const {
  const auto it = rows_.find(key);
  if (it == rows_.end()) return std::nullopt;
  return it->second.tier;
}

void OrderedKv::Scan(
    std::string_view begin, std::string_view end,
    const std::function<bool(std::string_view, std::string_view)>& visit)
    const {
  for (auto it = rows_.lower_bound(begin);
       it != rows_.end() && (end.empty() || std::string_view(it->first) < end);
       ++it) {
    if (!visit(it->first, it->second.value)) return;
  }
}

std::optional<std::pair<std::string_view, std::string_view>>
OrderedKv::SeekBefore(std::string_view bound) const {
  auto it = rows_.lower_bound(bound);
  if (it == rows_.begin()) return std::nullopt;
  --it;
  return std::make_pair(std::string_view(it->first),
                        std::string_view(it->second.value));
}

std::string EncodeSeqno(std::uint64_t seqno) {
  std::string out(8, '\0');
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<char>(seqno >> (8 * (7 - i)));
  }
  return out;
}

std::uint64_t DecodeSeqno(std::string_view encoded) {
  assert(encoded.size() >= 8);
  std::uint64_t seqno = 0;
  for (int i = 0; i < 8; ++i) {
    seqno = (seqno << 8) | static_cast<std::uint8_t>(encoded[i]);
  }
  return seqno;
}

}  // namespace censys::storage
