// Field-level delta encoding.
//
// "Journal events are delta encoded such that only differences to a service
// are stored to disk rather than the entire scan record since most services
// change very little across refresh scans" (§5.2). A delta is a list of
// set/remove operations on a field map; applying a delta to the old state
// yields the new state exactly.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace censys::storage {

using FieldMap = std::map<std::string, std::string>;

struct FieldOp {
  enum class Kind : std::uint8_t { kSet, kRemove } kind = Kind::kSet;
  std::string key;
  std::string value;  // empty for kRemove

  bool operator==(const FieldOp&) const = default;
};

struct Delta {
  std::vector<FieldOp> ops;  // sorted by key; at most one op per key

  bool empty() const { return ops.empty(); }
  std::size_t size() const { return ops.size(); }

  std::string Encode() const;
  static std::optional<Delta> Decode(std::string_view data);

  bool operator==(const Delta&) const = default;
};

// The delta that transforms `before` into `after`.
Delta ComputeDelta(const FieldMap& before, const FieldMap& after);

// Applies `delta` to `state` in place.
void ApplyDelta(FieldMap& state, const Delta& delta);

}  // namespace censys::storage
