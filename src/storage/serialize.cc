#include "storage/serialize.h"

namespace censys::storage {

void PutVarint(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

std::size_t VarintLength(std::uint64_t value) {
  std::size_t n = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++n;
  }
  return n;
}

std::optional<std::uint64_t> GetVarint(std::string_view data,
                                       std::size_t* pos) {
  std::uint64_t value = 0;
  int shift = 0;
  while (*pos < data.size()) {
    const std::uint8_t byte = static_cast<std::uint8_t>(data[(*pos)++]);
    if (shift >= 64) return std::nullopt;  // overlong
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
  return std::nullopt;  // truncated
}

void PutLengthPrefixed(std::string& out, std::string_view value) {
  PutVarint(out, value.size());
  out.append(value);
}

std::optional<std::string_view> GetLengthPrefixed(std::string_view data,
                                                  std::size_t* pos) {
  const auto len = GetVarint(data, pos);
  if (!len.has_value()) return std::nullopt;
  if (*pos + *len > data.size()) return std::nullopt;
  const std::string_view value = data.substr(*pos, *len);
  *pos += *len;
  return value;
}

std::string EncodeFields(const std::map<std::string, std::string>& fields) {
  std::string out;
  PutVarint(out, fields.size());
  for (const auto& [key, value] : fields) {
    PutLengthPrefixed(out, key);
    PutLengthPrefixed(out, value);
  }
  return out;
}

std::optional<std::map<std::string, std::string>> DecodeFields(
    std::string_view data) {
  std::size_t pos = 0;
  const auto count = GetVarint(data, &pos);
  if (!count.has_value()) return std::nullopt;
  std::map<std::string, std::string> fields;
  for (std::uint64_t i = 0; i < *count; ++i) {
    const auto key = GetLengthPrefixed(data, &pos);
    const auto value = GetLengthPrefixed(data, &pos);
    if (!key.has_value() || !value.has_value()) return std::nullopt;
    fields.emplace(std::string(*key), std::string(*value));
  }
  if (pos != data.size()) return std::nullopt;  // trailing garbage
  return fields;
}

}  // namespace censys::storage
