#include "serving/replica_router.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "core/trace.h"

namespace censys::serving {
namespace {

// Bounded busy-wait between failover attempts: router threads hold no
// locks here and must not sleep (the pool is shared across the batch).
void BusyWaitMicros(double us) {
  if (us <= 0) return;
  // Backoff pacing, not stage timing. censyslint:allow(wall-timer)
  const WallTimer timer;  // censyslint:allow(wall-timer)
  while (timer.ElapsedMicros() < us) {
  }
}

}  // namespace

ReplicaRouter::ReplicaRouter(std::vector<Endpoint> endpoints,
                             std::function<std::uint64_t()> leader_lsn)
    : ReplicaRouter(std::move(endpoints), std::move(leader_lsn), Options()) {}

ReplicaRouter::ReplicaRouter(std::vector<Endpoint> endpoints,
                             std::function<std::uint64_t()> leader_lsn,
                             Options options)
    : endpoints_(std::move(endpoints)),
      leader_lsn_(std::move(leader_lsn)),
      options_(options),
      executor_(options.threads),
      policy_(endpoints_.size(), options.policy, options.seed) {}

double ReplicaRouter::NowUs() const { return lifetime_timer_.ElapsedMicros(); }

RouterPolicy::Health ReplicaRouter::ReplicaHealth(std::size_t i) const {
  const core::MutexLock lock(mu_);
  return policy_.health(i);
}

void ReplicaRouter::RouteOne(const Query& query, std::size_t index,
                             std::uint64_t leader_lsn, RoutedAnswer& answer,
                             PerQuery& pq) {
  answer.leader_lsn = leader_lsn;
  const std::size_t n = endpoints_.size();
  std::vector<bool> tried(n, false);
  const bool capture = options_.capture_views;
  int max_attempts;
  {
    const core::MutexLock lock(mu_);
    max_attempts = policy_.options().max_attempts;
  }

  int last_replica = -1;
  while (static_cast<int>(pq.attempts) < max_attempts) {
    std::size_t pick;
    std::optional<std::size_t> hedge_pick;
    {
      const core::MutexLock lock(mu_);
      const auto p = policy_.PickPrimary(NowUs(), tried);
      if (!p.has_value()) break;
      pick = *p;
      if (policy_.ShouldHedge(pick)) hedge_pick = policy_.PickHedge(pick);
    }
    tried[pick] = true;
    ++pq.attempts;
    if (pq.attempts > 1) {
      ++pq.retries;
      if (last_replica >= 0 && static_cast<std::size_t>(last_replica) != pick) {
        ++pq.failovers;
      }
      double backoff;
      {
        const core::MutexLock lock(mu_);
        backoff = policy_.BackoffUs(static_cast<int>(pq.attempts),
                                    static_cast<std::uint64_t>(index));
      }
      BusyWaitMicros(backoff);
    }
    last_replica = static_cast<int>(pick);

    const replicate::Follower* f = endpoints_[pick].follower;
    if (!f->serving()) {
      const core::MutexLock lock(mu_);
      policy_.OnFailure(pick, NowUs());
      continue;
    }
    QueryOutcome out = endpoints_[pick].frontend->ServeOne(query, capture);
    std::uint64_t lsn = f->applied_lsn();
    if (out.failed || !f->serving()) {
      // The ladder bottomed out, or the follower died mid-serve (its
      // answer may predate an incomplete apply — don't trust it).
      const core::MutexLock lock(mu_);
      policy_.OnFailure(pick, NowUs());
      continue;
    }
    {
      const core::MutexLock lock(mu_);
      policy_.OnSuccess(pick, out.latency_us);
    }

    // Hedged read: mirror to the fastest healthy partner; keep whichever
    // answer carries the fresher watermark (ties keep the primary).
    if (hedge_pick.has_value()) {
      ++pq.hedged;
      const std::size_t hp = *hedge_pick;
      const replicate::Follower* hf = endpoints_[hp].follower;
      if (hf->serving()) {
        QueryOutcome hout = endpoints_[hp].frontend->ServeOne(query, capture);
        const std::uint64_t hlsn = hf->applied_lsn();
        if (!hout.failed && hf->serving()) {
          {
            const core::MutexLock lock(mu_);
            policy_.OnSuccess(hp, hout.latency_us);
          }
          if (hlsn > lsn) {
            out = std::move(hout);
            lsn = hlsn;
            pick = hp;
            ++pq.hedge_wins;
          }
        } else {
          const core::MutexLock lock(mu_);
          policy_.OnFailure(hp, NowUs());
        }
      }
    }

    answer.answered = true;
    answer.replica = static_cast<int>(pick);
    answer.replica_lsn = lsn;
    answer.stale = lsn < leader_lsn;
    answer.outcome = std::move(out);
    return;
  }

  // Degradation ladder: a stale-but-watermarked answer from a lagging
  // replica beats shedding the query.
  std::optional<std::size_t> sp;
  {
    const core::MutexLock lock(mu_);
    sp = policy_.PickStale(NowUs(), tried);
  }
  if (sp.has_value() && endpoints_[*sp].follower->serving()) {
    ++pq.attempts;
    const replicate::Follower* f = endpoints_[*sp].follower;
    QueryOutcome out = endpoints_[*sp].frontend->ServeOne(query, capture);
    const std::uint64_t lsn = f->applied_lsn();
    if (!out.failed && f->serving()) {
      {
        const core::MutexLock lock(mu_);
        policy_.OnSuccess(*sp, out.latency_us);
      }
      answer.answered = true;
      answer.replica = static_cast<int>(*sp);
      answer.replica_lsn = lsn;
      answer.stale = lsn < leader_lsn;
      answer.outcome = std::move(out);
      return;
    }
    const core::MutexLock lock(mu_);
    policy_.OnFailure(*sp, NowUs());
  }

  // Nothing could answer. Zero attempts means no replica was even
  // eligible (shed at admission); otherwise every try failed.
  answer.shed = pq.attempts == 0;
}

RouterReport ReplicaRouter::Run(const std::vector<Query>& queries,
                                std::vector<RoutedAnswer>* answers) {
  TRACE_SPAN("serving", "router.batch");
  RouterReport report;
  report.queries = queries.size();
  report.served_by.assign(endpoints_.size(), 0);
  if (queries.empty() || endpoints_.empty()) {
    report.shed = queries.size();
    if (answers != nullptr) answers->assign(queries.size(), RoutedAnswer{});
    return report;
  }

  const std::uint64_t leader = leader_lsn_ ? leader_lsn_() : 0;
  // Refresh health from the replicas' published watermarks before
  // dispatch: dead followers go down, watermark lag drives the
  // healthy<->lagging hysteresis.
  {
    const core::MutexLock lock(mu_);
    for (std::size_t i = 0; i < endpoints_.size(); ++i) {
      const replicate::Follower* f = endpoints_[i].follower;
      if (!f->serving()) {
        policy_.OnFailure(i, NowUs());
      } else {
        policy_.ObserveLag(i, f->LagBehind(leader));
      }
    }
  }

  std::vector<RoutedAnswer> routed(queries.size());
  std::vector<PerQuery> per_query(queries.size());
  const WallTimer batch_timer;  // censyslint:allow(wall-timer)
  executor_.ParallelFor(queries.size(), [&](std::size_t i) {
    RouteOne(queries[i], i, leader, routed[i], per_query[i]);
  });
  report.elapsed_us = batch_timer.ElapsedMicros();

  for (std::size_t i = 0; i < queries.size(); ++i) {
    const RoutedAnswer& a = routed[i];
    const PerQuery& pq = per_query[i];
    if (a.answered) {
      ++report.answered;
      if (a.stale) ++report.stale;
      report.served_by[static_cast<std::size_t>(a.replica)] += 1;
    } else if (a.shed) {
      ++report.shed;
    } else {
      ++report.failed;
    }
    report.retries += pq.retries;
    report.failovers += pq.failovers;
    report.hedged += pq.hedged;
    report.hedge_wins += pq.hedge_wins;
  }
  report.qps = report.elapsed_us > 0
                   ? static_cast<double>(report.queries) /
                         (report.elapsed_us / 1e6)
                   : 0;

  queries_metric_.Add(report.queries);
  answered_metric_.Add(report.answered);
  stale_metric_.Add(report.stale);
  shed_metric_.Add(report.shed);
  failed_metric_.Add(report.failed);
  retries_metric_.Add(report.retries);
  failovers_metric_.Add(report.failovers);
  hedged_metric_.Add(report.hedged);
  hedge_wins_metric_.Add(report.hedge_wins);
  {
    const core::MutexLock lock(mu_);
    healthy_metric_.Set(static_cast<std::int64_t>(
        policy_.CountHealth(RouterPolicy::Health::kHealthy)));
    lagging_metric_.Set(static_cast<std::int64_t>(
        policy_.CountHealth(RouterPolicy::Health::kLagging)));
    down_metric_.Set(static_cast<std::int64_t>(
        policy_.CountHealth(RouterPolicy::Health::kDown)));
  }

  if (answers != nullptr) *answers = std::move(routed);
  return report;
}

void ReplicaRouter::BindMetrics(metrics::Registry* registry) {
  queries_metric_ =
      metrics::BindCounter(registry, "censys.serving.router.queries");
  answered_metric_ =
      metrics::BindCounter(registry, "censys.serving.router.answered");
  stale_metric_ =
      metrics::BindCounter(registry, "censys.serving.router.stale_answers");
  shed_metric_ = metrics::BindCounter(registry, "censys.serving.router.shed");
  failed_metric_ =
      metrics::BindCounter(registry, "censys.serving.router.failed");
  retries_metric_ =
      metrics::BindCounter(registry, "censys.serving.router.retries");
  failovers_metric_ =
      metrics::BindCounter(registry, "censys.serving.router.failovers");
  hedged_metric_ =
      metrics::BindCounter(registry, "censys.serving.router.hedged");
  hedge_wins_metric_ =
      metrics::BindCounter(registry, "censys.serving.router.hedge_wins");
  healthy_metric_ =
      metrics::BindGauge(registry, "censys.serving.router.replicas_healthy");
  lagging_metric_ =
      metrics::BindGauge(registry, "censys.serving.router.replicas_lagging");
  down_metric_ =
      metrics::BindGauge(registry, "censys.serving.router.replicas_down");
}

}  // namespace censys::serving
