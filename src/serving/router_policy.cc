#include "serving/router_policy.h"

#include <algorithm>

#include "core/rng.h"

namespace censys::serving {

RouterPolicy::RouterPolicy(std::size_t replicas, Options options,
                           std::uint64_t seed)
    : options_(options), seed_(seed), replicas_(replicas) {
  if (options_.max_attempts < 1) options_.max_attempts = 1;
  if (options_.healthy_streak < 1) options_.healthy_streak = 1;
  options_.jitter_frac = std::clamp(options_.jitter_frac, 0.0, 1.0);
}

void RouterPolicy::ObserveLag(std::size_t replica, std::uint64_t lag) {
  Replica& r = replicas_[replica];
  r.lag = lag;
  switch (r.health) {
    case Health::kDown:
      // Lag says nothing about a dead replica; only a probe serve
      // resurrects it.
      break;
    case Health::kHealthy:
      if (lag > options_.lagging_above) {
        r.health = Health::kLagging;
        r.streak = 0;
      }
      break;
    case Health::kLagging:
      if (lag < options_.healthy_below) {
        if (++r.streak >= options_.healthy_streak) {
          r.health = Health::kHealthy;
          r.streak = 0;
        }
      } else {
        r.streak = 0;  // hysteresis: one bad round restarts the streak
      }
      break;
  }
}

void RouterPolicy::OnSuccess(std::size_t replica, double latency_us) {
  Replica& r = replicas_[replica];
  r.ewma_us = r.ewma_us == 0
                  ? latency_us
                  : options_.latency_alpha * latency_us +
                        (1.0 - options_.latency_alpha) * r.ewma_us;
  if (r.health == Health::kDown) {
    // Probe succeeded: rejoin as lagging and re-earn healthy through the
    // streak (the replica has been missing shipments while down).
    r.health = Health::kLagging;
    r.streak = 0;
  }
}

void RouterPolicy::OnFailure(std::size_t replica, double now_us) {
  Replica& r = replicas_[replica];
  r.health = Health::kDown;
  r.streak = 0;
  r.down_since_us = now_us;
}

std::optional<std::size_t> RouterPolicy::PickPrimary(
    double now_us, const std::vector<bool>& exclude) {
  const std::size_t n = replicas_.size();
  if (n == 0) return std::nullopt;
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t i = (cursor_ + step) % n;
    if (i < exclude.size() && exclude[i]) continue;
    if (replicas_[i].health != Health::kHealthy) continue;
    cursor_ = (i + 1) % n;
    return i;
  }
  // No healthy replica: allow one down replica past its probe interval to
  // take the read — the only way a dead-but-revived follower gets
  // rediscovered.
  for (std::size_t i = 0; i < n; ++i) {
    if (i < exclude.size() && exclude[i]) continue;
    if (Probeable(replicas_[i], now_us)) return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> RouterPolicy::PickStale(
    double now_us, const std::vector<bool>& exclude) const {
  const std::size_t n = replicas_.size();
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < n; ++i) {
    if (i < exclude.size() && exclude[i]) continue;
    if (replicas_[i].health != Health::kLagging) continue;
    if (!best.has_value() || replicas_[i].lag < replicas_[*best].lag) {
      best = i;  // least-stale answer wins
    }
  }
  if (best.has_value()) return best;
  for (std::size_t i = 0; i < n; ++i) {
    if (i < exclude.size() && exclude[i]) continue;
    if (Probeable(replicas_[i], now_us)) return i;
  }
  return std::nullopt;
}

bool RouterPolicy::ShouldHedge(std::size_t primary) const {
  if (options_.hedge_latency_us <= 0) return false;
  const Replica& r = replicas_[primary];
  if (r.ewma_us < options_.hedge_latency_us) return false;
  return PickHedge(primary).has_value();
}

std::optional<std::size_t> RouterPolicy::PickHedge(std::size_t primary) const {
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (i == primary) continue;
    if (replicas_[i].health != Health::kHealthy) continue;
    if (!best.has_value() || replicas_[i].ewma_us < replicas_[*best].ewma_us) {
      best = i;
    }
  }
  return best;
}

double RouterPolicy::BackoffUs(int attempt, std::uint64_t salt) const {
  if (attempt <= 1) return 0;
  double backoff = options_.backoff_base_us;
  for (int k = 2; k < attempt && backoff < options_.backoff_cap_us; ++k) {
    backoff *= 2;
  }
  backoff = std::min(backoff, options_.backoff_cap_us);
  // Deterministic jitter in [0, jitter_frac] of the exponential value:
  // same (seed, salt, attempt) -> same wait, different salts decorrelate.
  const std::uint64_t h = SplitMix64(
      seed_ ^ (salt * 0x9e3779b97f4a7c15ull) ^ static_cast<std::uint64_t>(attempt));
  const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  return backoff * (1.0 - options_.jitter_frac * unit);
}

std::size_t RouterPolicy::CountHealth(Health h) const {
  std::size_t count = 0;
  for (const Replica& r : replicas_) {
    if (r.health == h) ++count;
  }
  return count;
}

}  // namespace censys::serving
