// Replicated read serving: fans query batches across N replicas, each a
// (ServingFrontend, replicate::Follower) pair, with health-aware replica
// selection, deadline-bounded retry/failover, hedged reads, and a
// degradation ladder that prefers a stale-but-watermarked answer from a
// lagging replica over shedding.
//
// Per query:
//   1. PickPrimary (round-robin over healthy replicas; a down replica is
//      probed after its probe interval) and serve through the replica
//      frontend's own ladder (ServeOne).
//   2. On failure, mark the replica down and fail over: retry on the next
//      pick with RouterPolicy::BackoffUs busy-waited (reader threads never
//      sleep), up to max_attempts.
//   3. If the picked primary's latency EWMA is over the hedge threshold,
//      mirror the read to the fastest healthy partner and keep whichever
//      answer carries the higher applied LSN (fresher watermark).
//   4. Attempts exhausted or no healthy replica: degrade to the
//      least-lagging lagging replica — the answer is served and labeled
//      stale (replica LSN < leader LSN at dispatch), never wrong.
//   5. Nothing can answer: the query is shed (no replica tried) or failed
//      (replicas tried, all down).
//
// Staleness labeling is the correctness contract the chaos tests pin
// down: every RoutedAnswer carries (replica_lsn, leader_lsn) so callers
// can tell exactly how far behind the serving watermark was; an answer is
// only `stale` when the replica had not applied the leader's last durable
// LSN at dispatch.
//
// Concurrency: Run is single-caller (it owns an Executor), but replicas
// may be killed/revived concurrently by a chaos thread — the router reads
// Follower::serving()/applied_lsn() (atomics) and serves through
// ServeOne (thread-safe). The RouterPolicy is guarded by mu_: router
// threads take it briefly around pick/observe calls and never hold it
// across a serve or a busy-wait.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/clock.h"
#include "core/executor.h"
#include "core/metrics.h"
#include "core/thread_safety.h"
#include "replicate/follower.h"
#include "serving/frontend.h"
#include "serving/router_policy.h"

namespace censys::serving {

// One query's routed outcome.
struct RoutedAnswer {
  bool answered = false;  // some replica produced a (possibly stale) answer
  bool stale = false;     // replica watermark < leader watermark at dispatch
  bool shed = false;      // no replica was eligible to even try
  int replica = -1;       // who answered (-1 if none)
  std::uint64_t replica_lsn = 0;  // answerer's applied LSN at answer time
  std::uint64_t leader_lsn = 0;   // leader durable LSN at batch dispatch
  QueryOutcome outcome;
};

// Aggregate outcome of one routed batch.
struct RouterReport {
  std::size_t queries = 0;
  std::size_t answered = 0;
  std::size_t stale = 0;   // answered with a stale label
  std::size_t shed = 0;    // no eligible replica at all
  std::size_t failed = 0;  // tried >= 1 replica, none answered
  std::uint64_t retries = 0;    // serve attempts beyond each query's first
  std::uint64_t failovers = 0;  // attempts that moved to a different replica
  std::uint64_t hedged = 0;     // hedge reads issued
  std::uint64_t hedge_wins = 0; // hedge answer was fresher and won
  std::vector<std::size_t> served_by;  // answers per replica
  double elapsed_us = 0;
  double qps = 0;
};

class ReplicaRouter {
 public:
  struct Endpoint {
    ServingFrontend* frontend = nullptr;
    const replicate::Follower* follower = nullptr;
  };

  struct Options {
    // Router threads; 0 routes queries inline on the caller.
    int threads = 4;
    RouterPolicy::Options policy{};
    // Jitter seed for deterministic backoff schedules.
    std::uint64_t seed = 1;
    // Capture served host views into RoutedAnswer::outcome.view (the
    // chaos oracle reads watermarks off them).
    bool capture_views = false;
  };

  // leader_lsn() is sampled once per batch; answers at a lower replica
  // watermark are labeled stale.
  ReplicaRouter(std::vector<Endpoint> endpoints,
                std::function<std::uint64_t()> leader_lsn);
  ReplicaRouter(std::vector<Endpoint> endpoints,
                std::function<std::uint64_t()> leader_lsn, Options options);

  ReplicaRouter(const ReplicaRouter&) = delete;
  ReplicaRouter& operator=(const ReplicaRouter&) = delete;

  // Routes the batch; blocks until done. Single-caller (one router = one
  // query pump), but tolerant of concurrent follower kill/revive.
  // `answers`, when non-null, receives one RoutedAnswer per query.
  RouterReport Run(const std::vector<Query>& queries,
                   std::vector<RoutedAnswer>* answers = nullptr);

  std::size_t size() const { return endpoints_.size(); }
  RouterPolicy::Health ReplicaHealth(std::size_t i) const;

  // Registers censys.serving.router.* instruments.
  void BindMetrics(metrics::Registry* registry);

 private:
  struct PerQuery {
    std::uint32_t attempts = 0;
    std::uint32_t retries = 0;
    std::uint32_t failovers = 0;
    std::uint32_t hedged = 0;
    std::uint32_t hedge_wins = 0;
  };

  void RouteOne(const Query& query, std::size_t index,
                std::uint64_t leader_lsn, RoutedAnswer& answer, PerQuery& pq);
  double NowUs() const;

  std::vector<Endpoint> endpoints_;
  std::function<std::uint64_t()> leader_lsn_;
  Options options_;
  Executor executor_;

  // Monotonic microsecond clock for the policy's probe intervals; spans
  // the router's lifetime so down-since stamps stay comparable across
  // batches. Health bookkeeping, not stage timing.
  const WallTimer lifetime_timer_;  // censyslint:allow(wall-timer)

  mutable core::Mutex mu_;
  RouterPolicy policy_ CENSYS_GUARDED_BY(mu_);

  metrics::CounterHandle queries_metric_;
  metrics::CounterHandle answered_metric_;
  metrics::CounterHandle stale_metric_;
  metrics::CounterHandle shed_metric_;
  metrics::CounterHandle failed_metric_;
  metrics::CounterHandle retries_metric_;
  metrics::CounterHandle failovers_metric_;
  metrics::CounterHandle hedged_metric_;
  metrics::CounterHandle hedge_wins_metric_;
  metrics::GaugeHandle healthy_metric_;
  metrics::GaugeHandle lagging_metric_;
  metrics::GaugeHandle down_metric_;
};

}  // namespace censys::serving
