// Replica selection policy for the serving router: a pure, deterministic
// state machine over per-replica health, lag, and latency.
//
// The policy owns no clock and no locks. Every decision that depends on
// time takes `now_us` as a parameter, so unit tests drive it with a
// simulated clock (no sleeps, no wall-timer reads); the router feeds it
// real elapsed time and guards it with its own mutex. Jitter is
// deterministic too — SplitMix64 over (seed, salt, attempt) — so a given
// seed always produces the same backoff schedule.
//
// Health ladder per replica:
//   kHealthy --- lag > lagging_above ------------------------> kLagging
//   kLagging --- healthy_streak consecutive observations
//                with lag < healthy_below --------------------> kHealthy
//   any      --- serve failure / follower not serving --------> kDown
//   kDown    --- successful probe serve ----------------------> kLagging
//
// The lagging->healthy edge is hysteretic on purpose: a replica that
// oscillates around the lag threshold would otherwise flap in and out of
// the primary rotation. kDown replicas re-enter as kLagging (not
// kHealthy) so they re-earn fresh-read traffic via the streak.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace censys::serving {

class RouterPolicy {
 public:
  enum class Health : std::uint8_t { kHealthy = 0, kLagging = 1, kDown = 2 };

  struct Options {
    // Lag (leader LSN minus applied LSN) above which a healthy replica
    // is demoted to lagging.
    std::uint64_t lagging_above = 256;
    // A lagging replica must observe lag below this...
    std::uint64_t healthy_below = 64;
    // ...for this many consecutive observations to re-promote (hysteresis).
    int healthy_streak = 3;
    // Serve attempts per query before the router degrades to stale.
    int max_attempts = 3;
    // Backoff before retry k (k >= 2) is base * 2^(k-2), capped, minus
    // deterministic jitter in [0, jitter_frac] of the exponential value.
    double backoff_base_us = 100;
    double backoff_cap_us = 10000;
    double jitter_frac = 0.25;
    // Hedge a read when the picked primary's latency EWMA exceeds this
    // and a distinct healthy partner exists. 0 disables hedging.
    double hedge_latency_us = 500;
    // A down replica becomes eligible for a probe serve after this long.
    double down_probe_us = 5000;
    // EWMA smoothing for per-replica serve latency.
    double latency_alpha = 0.2;
  };

  RouterPolicy(std::size_t replicas, Options options, std::uint64_t seed);

  // --- observations ----------------------------------------------------------
  // Watermark observation at batch start (drives healthy<->lagging).
  void ObserveLag(std::size_t replica, std::uint64_t lag);
  // A serve completed; updates the latency EWMA. A down replica that
  // serves (a probe) re-enters the rotation as lagging.
  void OnSuccess(std::size_t replica, double latency_us);
  // A serve failed or the follower is not serving: mark down and stamp
  // the probe clock.
  void OnFailure(std::size_t replica, double now_us);

  // --- decisions -------------------------------------------------------------
  // Round-robin over healthy replicas not in `exclude`; when none are
  // healthy, a down replica whose probe interval has elapsed. nullopt
  // means no replica may take a fresh read right now.
  std::optional<std::size_t> PickPrimary(double now_us,
                                         const std::vector<bool>& exclude);
  // Degradation ladder: the least-lagging lagging replica not in
  // `exclude` (its answer is stale but watermarked), else a probeable
  // down replica.
  std::optional<std::size_t> PickStale(double now_us,
                                       const std::vector<bool>& exclude) const;
  // Hedge when the primary's EWMA is over the hedge threshold and a
  // distinct healthy partner exists.
  bool ShouldHedge(std::size_t primary) const;
  // The healthy replica (!= primary) with the lowest latency EWMA.
  std::optional<std::size_t> PickHedge(std::size_t primary) const;
  // Deterministic backoff before attempt k (1-based; attempt 1 never
  // waits). `salt` decorrelates concurrent queries.
  double BackoffUs(int attempt, std::uint64_t salt) const;

  // --- inspection ------------------------------------------------------------
  std::size_t size() const { return replicas_.size(); }
  Health health(std::size_t replica) const {
    return replicas_[replica].health;
  }
  std::uint64_t lag(std::size_t replica) const { return replicas_[replica].lag; }
  double LatencyEwmaUs(std::size_t replica) const {
    return replicas_[replica].ewma_us;
  }
  std::size_t CountHealth(Health h) const;
  const Options& options() const { return options_; }

 private:
  struct Replica {
    Health health = Health::kHealthy;
    std::uint64_t lag = 0;
    int streak = 0;           // consecutive below-threshold lag observations
    double ewma_us = 0;       // 0 until the first success
    double down_since_us = 0; // probe clock, valid while kDown
  };

  bool Probeable(const Replica& r, double now_us) const {
    return r.health == Health::kDown &&
           now_us - r.down_since_us >= options_.down_probe_us;
  }

  Options options_;
  std::uint64_t seed_;
  std::size_t cursor_ = 0;  // round-robin position for PickPrimary
  std::vector<Replica> replicas_;
};

}  // namespace censys::serving
