// Concurrent serving frontend (§5.3 "Search and Analysis Products").
//
// Drives mixed user traffic — host lookups, historical lookups, search
// queries, analytics series — against the read side, search index, and
// analytics store from a pool of reader threads, concurrently with engine
// ticks. Queries are pure reads: the frontend never touches the write side
// or the journal's append path, so serving traffic cannot perturb journal
// content (the digest tests assert exactly that).
//
// The frontend owns its own Executor: core::Executor::ParallelFor is a
// single-caller primitive, and the engine's pool is busy inside ticks.
// Reports censys.serving.* instruments (queries, qps, lookup latency);
// cache hit/miss instruments come from the ReadSide's ViewCache.
//
// Degradation: every query passes the "serving.read" fault-injection
// point; a transient read fault walks the ladder retry-with-backoff ->
// stale-cache answer (lookups, when a ViewCache is installed) -> failed,
// bounded by per-query and per-batch deadline budgets. A batch over its
// budget sheds the remaining queries outright. The frontend never
// crashes on a read fault — BatchReport::shed/degraded/failed and the
// censys.serving.shed/degraded/retries instruments account for every
// query.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/executor.h"
#include "core/metrics.h"
#include "core/rng.h"
#include "core/types.h"
#include "pipeline/read_side.h"
#include "query/columnar.h"
#include "search/analytics.h"
#include "search/index.h"

namespace censys::serving {

struct Query {
  enum class Kind : std::uint8_t {
    kLookup = 0,     // current host view (cacheable fast path)
    kHistory = 1,    // host view at a past timestamp (replay)
    kSearch = 2,     // full-text search expression
    kAnalytics = 3,  // protocol series + latest daily snapshot
    kAggregate = 4,  // columnar group-count sweep (query::AnalyticsTier)
  };

  Kind kind = Kind::kLookup;
  IPv4Address ip;    // lookup / history target
  Timestamp at;      // history timestamp; analytics/aggregate as-of day
  std::string text;  // search expression / analytics protocol name /
                     // aggregate field name
  // kAggregate: treat `text` as a field-name suffix (".service.name"
  // sweeps every port's column) instead of an exact field.
  bool suffix_aggregate = false;
};

// Outcome of one query through the degradation ladder (ServeOne, and
// Run()'s per-query accounting).
struct QueryOutcome {
  bool hit = false;
  bool shed = false;      // only set by Run()'s batch-deadline shedding
  bool degraded = false;  // answered from a stale cached view
  bool failed = false;    // retries exhausted, no stale fallback
  std::size_t results = 0;
  double latency_us = 0;
  std::uint32_t retries = 0;
  std::uint32_t faults = 0;
  // The served view, filled for lookup/history queries when requested via
  // ServeOne(capture_view): the replica router's correctness oracle reads
  // the per-entity watermark off it.
  std::optional<pipeline::HostView> view;
};

// Aggregate outcome of one Run() batch.
struct BatchReport {
  std::size_t queries = 0;
  std::size_t lookups = 0;
  std::size_t histories = 0;
  std::size_t searches = 0;
  std::size_t analytics = 0;
  std::size_t aggregates = 0;

  std::size_t lookup_hits = 0;     // lookups that returned a view
  std::size_t search_results = 0;  // total doc ids matched across searches

  // Degradation ladder accounting (all zero on a healthy run).
  std::size_t shed = 0;      // never attempted: batch deadline exhausted
  std::size_t degraded = 0;  // answered from a stale cached view
  std::size_t failed = 0;    // exhausted retries, no stale fallback
  std::uint64_t read_faults = 0;  // transient read errors observed
  std::uint64_t retries = 0;      // fresh-read retry attempts

  double elapsed_us = 0;
  double qps = 0;
  double lookup_p50_us = 0;
  double lookup_p99_us = 0;

  // View-cache counter deltas across this batch (zero without a cache).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  double cache_hit_ratio = 0;
};

class ServingFrontend {
 public:
  struct Options {
    // Reader threads; 0 runs queries inline on the caller.
    int threads = 4;

    // --- graceful degradation (the ladder: retry -> stale -> fail, with
    // --- load shedding once the batch budget is gone) ----------------------
    // Wall-clock budget for one query, including its retries; 0 = none.
    // Once exceeded the query stops retrying and degrades immediately.
    double query_deadline_us = 0;
    // Wall-clock budget for the whole batch; 0 = none. Queries starting
    // after it is exhausted are shed: answered "unavailable" without
    // touching the read path at all (overload protection).
    double batch_deadline_us = 0;
    // Fresh-read attempts after a transient fault (so max_read_retries+1
    // attempts total).
    int max_read_retries = 2;
    // Backoff before retry k is k * retry_backoff_us, busy-waited on the
    // wall clock (reader threads never sleep).
    double retry_backoff_us = 50;
    // Degrade lookups to the last cached view (any watermark) when fresh
    // reads keep failing, instead of failing the query.
    bool allow_stale_reads = true;
  };

  ServingFrontend(const pipeline::ReadSide& read_side,
                  const search::SearchIndex& index,
                  const search::AnalyticsStore& analytics)
      : ServingFrontend(read_side, index, analytics, Options()) {}
  ServingFrontend(const pipeline::ReadSide& read_side,
                  const search::SearchIndex& index,
                  const search::AnalyticsStore& analytics, Options options);

  ServingFrontend(const ServingFrontend&) = delete;
  ServingFrontend& operator=(const ServingFrontend&) = delete;

  // Executes the batch across the reader pool and blocks until done. Safe
  // to call while the engine ticks on another thread; not safe to call
  // from two threads at once (one frontend = one query pump).
  BatchReport Run(const std::vector<Query>& queries);

  // Executes one query inline on the calling thread through the same
  // degradation ladder Run uses (retry -> stale -> fail; no batch-level
  // shedding — that is the caller's budget to manage). Unlike Run this IS
  // safe from many threads at once: it never touches the executor, and
  // the read paths and metrics sinks are all concurrent. The replica
  // router fans queries across followers' frontends through this.
  QueryOutcome ServeOne(const Query& query, bool capture_view = false);

  std::uint64_t queries_served() const {
    return queries_served_.load(std::memory_order_relaxed);
  }
  // Lifetime p99 of current-host lookups, microseconds.
  double LookupP99Us() const { return lookup_latency_.Quantile(0.99); }
  int thread_count() const { return executor_.thread_count(); }

  // Registers censys.serving.queries / qps / lookup_us plus the
  // degradation instruments shed / degraded / retries / read_faults.
  void BindMetrics(metrics::Registry* registry);

  // Wires the columnar analytics tier behind kAggregate queries. The
  // tier must outlive the frontend; without one, aggregate queries fail
  // through the ladder like any exhausted read. Call before serving
  // traffic (not thread-safe against in-flight queries).
  void AttachAnalyticsTier(const query::AnalyticsTier* tier) {
    analytics_tier_ = tier;
  }

  // Deterministic mixed workload: ~70% lookups, 10% history, 10% search,
  // 10% analytics, targets drawn from `hosts` via `rng`. Search queries
  // cycle through `search_texts`; analytics queries through `protocols`.
  static std::vector<Query> MixedWorkload(
      std::size_t count, const std::vector<IPv4Address>& hosts,
      const std::vector<std::string>& search_texts,
      const std::vector<std::string>& protocols, Timestamp now, Rng& rng);

 private:
  // The ladder shared by Run and ServeOne: retry with backoff, then stale
  // cache (lookups), then failed. Thread-safe.
  void ExecuteLadder(const Query& query, QueryOutcome& out,
                     metrics::Histogram* batch_lookup_latency,
                     bool capture_view);

  const pipeline::ReadSide& read_side_;
  const search::SearchIndex& index_;
  const search::AnalyticsStore& analytics_;
  const query::AnalyticsTier* analytics_tier_ = nullptr;
  Executor executor_;

  std::atomic<std::uint64_t> queries_served_{0};
  metrics::Histogram lookup_latency_;  // lifetime, powers LookupP99Us

  Options options_;

  metrics::CounterHandle queries_metric_;
  metrics::GaugeHandle qps_metric_;
  metrics::HistogramHandle lookup_us_metric_;
  metrics::CounterHandle shed_metric_;
  metrics::CounterHandle degraded_metric_;
  metrics::CounterHandle retries_metric_;
  metrics::CounterHandle read_faults_metric_;
};

}  // namespace censys::serving
