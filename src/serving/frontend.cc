#include "serving/frontend.h"

#include <algorithm>

#include "core/clock.h"
#include "core/fault.h"
#include "core/trace.h"

namespace censys::serving {
namespace {

// Bounded busy-wait: reader threads hold no locks here and must not
// sleep (the executor pool is shared across the batch).
void BusyWaitMicros(double us) {
  if (us <= 0) return;
  // Deadline bookkeeping, not stage timing: the retry ladder's backoff and
  // budget checks need raw elapsed time. censyslint:allow(wall-timer)
  const WallTimer timer;  // censyslint:allow(wall-timer)
  while (timer.ElapsedMicros() < us) {
  }
}

}  // namespace

ServingFrontend::ServingFrontend(const pipeline::ReadSide& read_side,
                                 const search::SearchIndex& index,
                                 const search::AnalyticsStore& analytics,
                                 Options options)
    : read_side_(read_side), index_(index), analytics_(analytics),
      executor_(options.threads), options_(options) {}

void ServingFrontend::BindMetrics(metrics::Registry* registry) {
  queries_metric_ = metrics::BindCounter(registry, "censys.serving.queries");
  qps_metric_ = metrics::BindGauge(registry, "censys.serving.qps");
  lookup_us_metric_ =
      metrics::BindHistogram(registry, "censys.serving.lookup_us");
  shed_metric_ = metrics::BindCounter(registry, "censys.serving.shed");
  degraded_metric_ = metrics::BindCounter(registry, "censys.serving.degraded");
  retries_metric_ = metrics::BindCounter(registry, "censys.serving.retries");
  read_faults_metric_ =
      metrics::BindCounter(registry, "censys.serving.read_faults");
}

namespace {

[[maybe_unused]] constexpr const char* QuerySpanName(Query::Kind kind) {
  switch (kind) {
    case Query::Kind::kLookup: return "query.lookup";
    case Query::Kind::kHistory: return "query.history";
    case Query::Kind::kSearch: return "query.search";
    case Query::Kind::kAnalytics: return "query.analytics";
    case Query::Kind::kAggregate: return "query.aggregate";
  }
  return "query";
}

}  // namespace

void ServingFrontend::ExecuteLadder(const Query& q, QueryOutcome& out,
                                    metrics::Histogram* batch_lookup_latency,
                                    bool capture_view) {
  TRACE_SPAN("serving", QuerySpanName(q.kind));
  const WallTimer timer;  // censyslint:allow(wall-timer)
  // Retry ladder: every query passes the "serving.read" injection
  // point. On a pure read path every fault mode is a transient error —
  // a reader has nothing to tear or corrupt durably — so each one
  // costs a retry, bounded by the per-query deadline.
  bool done = false;
  for (int attempt = 0; attempt <= options_.max_read_retries; ++attempt) {
    if (attempt > 0) {
      ++out.retries;
      BusyWaitMicros(attempt * options_.retry_backoff_us);
    }
    if (fault::Hit("serving.read").has_value()) {
      ++out.faults;
      if (options_.query_deadline_us > 0 &&
          timer.ElapsedMicros() > options_.query_deadline_us) {
        break;  // budget gone: degrade now rather than retry further
      }
      continue;
    }
    switch (q.kind) {
      case Query::Kind::kLookup: {
        auto view = read_side_.GetHost(q.ip);
        out.hit = view.has_value();
        out.results = out.hit ? view->services.size() : 0;
        out.latency_us = timer.ElapsedMicros();
        if (batch_lookup_latency != nullptr) {
          batch_lookup_latency->Observe(out.latency_us);
        }
        lookup_latency_.Observe(out.latency_us);
        lookup_us_metric_.Observe(out.latency_us);
        if (capture_view && view.has_value()) out.view = std::move(*view);
        break;
      }
      case Query::Kind::kHistory: {
        auto view = read_side_.GetHostAt(q.ip, q.at);
        out.hit = view.has_value();
        out.results = out.hit ? view->services.size() : 0;
        out.latency_us = timer.ElapsedMicros();
        if (capture_view && view.has_value()) out.view = std::move(*view);
        break;
      }
      case Query::Kind::kSearch: {
        std::string error;
        const auto ids = index_.Search(q.text, &error);
        out.hit = !ids.empty();
        out.results = ids.size();
        out.latency_us = timer.ElapsedMicros();
        break;
      }
      case Query::Kind::kAnalytics: {
        const auto series = analytics_.ProtocolSeries(q.text);
        const auto latest =
            analytics_.GetLatestUpToCopy(q.at.minutes / (24 * 60));
        out.hit = !series.empty() || latest.has_value();
        out.results = series.size();
        out.latency_us = timer.ElapsedMicros();
        break;
      }
      case Query::Kind::kAggregate: {
        if (analytics_tier_ == nullptr) {
          // No tier attached: fall through the ladder like an exhausted
          // read (degrades to failed below).
          ++out.faults;
          continue;
        }
        const std::int64_t day = q.at.minutes / (24 * 60);
        const query::AnalyticsTier::Aggregate agg =
            q.suffix_aggregate ? analytics_tier_->GroupCountSuffix(day, q.text)
                               : analytics_tier_->GroupCount(day, q.text);
        out.hit = !agg.groups.empty();
        out.results = agg.groups.size();
        // A journal-walk fallback is a degraded (but correct) answer,
        // mirroring the stale-read labeling of the lookup ladder.
        out.degraded = !agg.from_segment;
        out.latency_us = timer.ElapsedMicros();
        break;
      }
    }
    done = true;
    break;
  }
  if (done) return;

  // Retries exhausted. Lookups can still degrade to the last cached
  // view at any watermark; everything else fails.
  if (q.kind == Query::Kind::kLookup && options_.allow_stale_reads) {
    if (auto stale = read_side_.GetHostStale(q.ip)) {
      out.degraded = true;
      out.hit = true;
      out.results = stale->services.size();
      out.latency_us = timer.ElapsedMicros();
      if (capture_view) out.view = std::move(*stale);
      return;
    }
  }
  out.failed = true;
  out.latency_us = timer.ElapsedMicros();
}

QueryOutcome ServingFrontend::ServeOne(const Query& query, bool capture_view) {
  QueryOutcome out;
  ExecuteLadder(query, out, /*batch_lookup_latency=*/nullptr, capture_view);
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  queries_metric_.Add();
  if (out.degraded) degraded_metric_.Add();
  retries_metric_.Add(out.retries);
  read_faults_metric_.Add(out.faults);
  return out;
}

BatchReport ServingFrontend::Run(const std::vector<Query>& queries) {
  TRACE_SPAN("serving", "batch");
  BatchReport report;
  report.queries = queries.size();
  if (queries.empty()) return report;

  const pipeline::ViewCache* cache = read_side_.cache();
  const std::uint64_t hits0 = cache != nullptr ? cache->hits() : 0;
  const std::uint64_t misses0 = cache != nullptr ? cache->misses() : 0;

  // Compact per-query record for the batch path: QueryOutcome carries an
  // optional HostView for ServeOne callers, which would blow up the
  // outcomes vector's stride here; the batch never captures views, so it
  // keeps the full outcome on the worker's stack and stores only the tally
  // fields.
  struct Outcome {
    bool hit = false;
    bool shed = false;
    bool degraded = false;
    bool failed = false;
    std::size_t results = 0;
    std::uint32_t retries = 0;
    std::uint32_t faults = 0;
  };
  std::vector<Outcome> outcomes(queries.size());
  metrics::Histogram batch_lookup_latency;

  const WallTimer batch_timer;  // censyslint:allow(wall-timer)
  executor_.ParallelFor(queries.size(), [&](std::size_t i) {
    const Query& q = queries[i];
    Outcome& out = outcomes[i];

    // Load shedding: once the batch budget is exhausted, answer
    // "unavailable" without touching the read path at all.
    if (options_.batch_deadline_us > 0 &&
        batch_timer.ElapsedMicros() > options_.batch_deadline_us) {
      out.shed = true;
      return;
    }

    QueryOutcome full;
    ExecuteLadder(q, full, &batch_lookup_latency, /*capture_view=*/false);
    out.hit = full.hit;
    out.degraded = full.degraded;
    out.failed = full.failed;
    out.results = full.results;
    out.retries = full.retries;
    out.faults = full.faults;
  });
  report.elapsed_us = batch_timer.ElapsedMicros();

  for (std::size_t i = 0; i < queries.size(); ++i) {
    const Outcome& out = outcomes[i];
    report.shed += out.shed ? 1 : 0;
    report.degraded += out.degraded ? 1 : 0;
    report.failed += out.failed ? 1 : 0;
    report.read_faults += out.faults;
    report.retries += out.retries;
    switch (queries[i].kind) {
      case Query::Kind::kLookup:
        ++report.lookups;
        if (out.hit) ++report.lookup_hits;
        break;
      case Query::Kind::kHistory:
        ++report.histories;
        break;
      case Query::Kind::kSearch:
        ++report.searches;
        report.search_results += out.results;
        break;
      case Query::Kind::kAnalytics:
        ++report.analytics;
        break;
      case Query::Kind::kAggregate:
        ++report.aggregates;
        break;
    }
  }
  report.qps = report.elapsed_us > 0
                   ? static_cast<double>(report.queries) /
                         (report.elapsed_us / 1e6)
                   : 0;
  report.lookup_p50_us = batch_lookup_latency.Quantile(0.50);
  report.lookup_p99_us = batch_lookup_latency.Quantile(0.99);

  if (cache != nullptr) {
    report.cache_hits = cache->hits() - hits0;
    report.cache_misses = cache->misses() - misses0;
    const double total =
        static_cast<double>(report.cache_hits + report.cache_misses);
    report.cache_hit_ratio =
        total == 0 ? 0.0 : static_cast<double>(report.cache_hits) / total;
  }

  queries_served_.fetch_add(report.queries, std::memory_order_relaxed);
  queries_metric_.Add(report.queries);
  qps_metric_.Set(static_cast<std::int64_t>(report.qps));
  shed_metric_.Add(report.shed);
  degraded_metric_.Add(report.degraded);
  retries_metric_.Add(report.retries);
  read_faults_metric_.Add(report.read_faults);
  return report;
}

std::vector<Query> ServingFrontend::MixedWorkload(
    std::size_t count, const std::vector<IPv4Address>& hosts,
    const std::vector<std::string>& search_texts,
    const std::vector<std::string>& protocols, Timestamp now, Rng& rng) {
  std::vector<Query> queries;
  queries.reserve(count);
  if (hosts.empty()) return queries;
  for (std::size_t i = 0; i < count; ++i) {
    Query q;
    q.ip = hosts[rng.NextBelow(hosts.size())];
    q.at = now;
    const double roll = rng.NextDouble();
    if (roll < 0.70 || (search_texts.empty() && protocols.empty())) {
      q.kind = Query::Kind::kLookup;
    } else if (roll < 0.80) {
      q.kind = Query::Kind::kHistory;
      // Uniformly back in time up to a week, clamped at t=0.
      const std::int64_t back =
          static_cast<std::int64_t>(rng.NextBelow(7 * 24 * 60));
      q.at = Timestamp{std::max<std::int64_t>(0, now.minutes - back)};
    } else if (roll < 0.90 && !search_texts.empty()) {
      q.kind = Query::Kind::kSearch;
      q.text = search_texts[i % search_texts.size()];
    } else if (!protocols.empty()) {
      q.kind = Query::Kind::kAnalytics;
      q.text = protocols[i % protocols.size()];
    } else {
      q.kind = Query::Kind::kLookup;
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

}  // namespace censys::serving
