// censyslint core: the repo's determinism, concurrency-contract, and
// architecture linter, as a library.
//
// A token/scan-level analyzer (no libclang — works on the GCC-only
// container) with two kinds of passes:
//
//   per-line rules   regex rules over comment/string-stripped lines
//                    (raw-mutex, wall-clock, raw-random, ... see kLineRules
//                    in lint.cc and docs/LINTING.md)
//   whole-program    cross-file passes over the full scanned set:
//     layering         #include graph checked against the declared layer
//                      DAG in tools/censyslint/layers.txt
//     lock-order       global lock-acquisition-order graph built from
//                      core::MutexLock / core::ReaderLock sites, failed on
//                      cycles (potential deadlock inversions)
//     unordered-iter   range-for / iterator loops over std::unordered_*
//                      containers in order-sensitive code (pipeline,
//                      storage, engines, search), where iteration order
//                      could leak into journals/digests
//
// main.cc wraps this library as the CLI; tests/censyslint_test.cc unit
// tests the graph builders and parsers directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace censyslint {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
  // Stable identity for baseline matching: path + rule + a symbol-level key
  // (included dir, lock-cycle signature, container name, ...) instead of a
  // line number, so baselines survive unrelated edits.
  std::string key;
  bool suppressed = false;  // matched a baseline entry
};

// One scanned file, pre-stripped. `code` replaces comments and string
// literals with spaces (newlines preserved) so token scans never match
// inside them; `raw_lines` keeps the original text for waiver checks.
struct SourceFile {
  std::string path;  // normalized, forward slashes
  bool header = false;
  std::string raw;
  std::string code;
  std::vector<std::string> raw_lines;
  std::vector<std::string> code_lines;
};

// --- text utilities -----------------------------------------------------------

std::string StripCommentsAndStrings(const std::string& in);
std::vector<std::string> SplitLines(const std::string& text);

// Loads and pre-strips one file. Returns nullopt when unreadable.
std::optional<SourceFile> LoadSource(const std::filesystem::path& file);

// Collects .h/.hpp/.cc/.cpp files under root (skipping build*/.git),
// sorted so runs are deterministic.
void CollectFiles(const std::filesystem::path& root,
                  std::vector<std::filesystem::path>* files);

// --- waivers ------------------------------------------------------------------

// `// censyslint:allow(rule-a,rule-b): justification` waives the listed
// rules on that line. The justification (after the colon) is optional for
// per-line rules and required for unordered-iter.
struct Waiver {
  bool present = false;
  std::string justification;
};
Waiver FindWaiver(std::string_view raw_line, std::string_view rule);

// Waiver for the statement at 0-based `idx`: on the line itself, or on a
// comment-only line (block) immediately above it — the `NOLINTNEXTLINE`
// shape, for waivers whose justification deserves its own line.
Waiver FindWaiverNear(const std::vector<std::string>& raw_lines,
                      std::size_t idx, std::string_view rule);

// --- layering pass ------------------------------------------------------------

// Parsed tools/censyslint/layers.txt: `dir: dep dep ...` lines declaring
// which layers each layer may include (itself is always allowed).
struct LayerGraph {
  std::map<std::string, std::set<std::string>> allowed;
  std::vector<std::string> errors;  // parse diagnostics

  bool Declares(std::string_view dir) const {
    return allowed.find(std::string(dir)) != allowed.end();
  }
};

LayerGraph ParseLayers(const std::string& text);

// First cycle found in the declared graph (empty when it is a DAG). A
// returned cycle lists the layers in order, first == last.
std::vector<std::string> FindLayerCycle(const LayerGraph& graph);

// Layer of a source path: the path segment following the last "src"
// component ("/repo/src/pipeline/read_side.h" -> "pipeline"); empty when
// the path has no src/<dir>/ shape.
std::string LayerOf(std::string_view path);

void RunLayeringPass(const std::vector<SourceFile>& files,
                     const LayerGraph& graph, const std::string& layers_path,
                     std::vector<Finding>* findings);

// --- lock-order pass ----------------------------------------------------------

// One scanned function body.
struct FunctionInfo {
  std::string class_name;  // enclosing class ("" for free functions)
  std::string name;        // unqualified
  std::string file;
  std::size_t line = 0;

  struct Acquisition {
    std::string lock;  // canonical id, e.g. "WriteSide::mu_"
    std::size_t line = 0;
    int depth = 0;  // brace depth at acquisition, relative to body
    bool reader = false;
  };
  std::vector<Acquisition> acquisitions;

  // Nested direct acquisitions observed in this body: `from` was still in
  // scope when `to` was acquired.
  struct NestedPair {
    std::string from;
    std::string to;
    std::size_t line = 0;
  };
  std::vector<NestedPair> nested;

  struct Call {
    std::string callee;          // method name only
    bool member_syntax = false;  // obj.F() / obj->F() vs bare F()
    std::size_t line = 0;
    std::vector<std::string> held;  // locks in scope at the call site
  };
  std::vector<Call> calls;
};

// Token-level extraction of function bodies, lock acquisitions, and call
// sites from one stripped file.
void ScanFunctions(const SourceFile& file, std::vector<FunctionInfo>* out);

// One directed edge in the global lock-order graph: `from` was held when
// `to` was acquired (directly or through a call chain).
struct LockEdge {
  std::string from;
  std::string to;
  std::string file;  // provenance of the acquisition/call creating it
  std::size_t line = 0;
  std::string via;  // call chain note, empty for direct nesting
};

// Builds the global edge set: direct nested acquisitions plus edges through
// calls, using a fixpoint over method names (member-syntax calls match any
// class's method of that name; bare calls match same-class/file methods).
std::vector<LockEdge> BuildLockOrderGraph(
    const std::vector<FunctionInfo>& functions);

// First lock cycle (first == last) in the edge set; empty when acyclic.
std::vector<std::string> FindLockCycle(const std::vector<LockEdge>& edges);

void RunLockOrderPass(const std::vector<SourceFile>& files,
                      std::vector<Finding>* findings);

// --- unordered-iter (determinism-ordering) pass -------------------------------

// Names of variables/members declared anywhere in the scanned set with a
// std::unordered_{map,set,multimap,multiset} type.
std::set<std::string> CollectUnorderedNames(
    const std::vector<SourceFile>& files);

// True when `path` is inside one of the order-sensitive trees
// (src/{pipeline,storage,engines,search}/) whose iteration order can feed
// journal bytes, digests, or served output.
bool InOrderSensitiveDir(std::string_view path);

void RunUnorderedIterPass(const std::vector<SourceFile>& files,
                          std::vector<Finding>* findings);

// --- per-line rules -----------------------------------------------------------

void RunLineRules(const SourceFile& file, std::vector<Finding>* findings);

// --- baseline -----------------------------------------------------------------

// Baseline file: `rule|path-suffix|key` lines (see baseline.txt header).
// Findings matching an entry are marked suppressed instead of failing.
struct Baseline {
  struct Entry {
    std::string rule;
    std::string path_suffix;
    std::string key;
  };
  std::vector<Entry> entries;
};
Baseline ParseBaseline(const std::string& text);
void ApplyBaseline(const Baseline& baseline, std::vector<Finding>* findings);

// --- orchestration ------------------------------------------------------------

struct PassTiming {
  std::string pass;
  double micros = 0;
  std::size_t findings = 0;
};

struct RunOptions {
  bool line_rules = true;
  bool layering = true;
  bool lock_order = true;
  bool unordered_iter = true;
  std::string layers_path;  // empty: skip layering
};

struct RunResult {
  std::vector<Finding> findings;
  std::vector<PassTiming> timings;
  std::size_t file_count = 0;
};

RunResult RunAllPasses(const std::vector<std::filesystem::path>& roots,
                       const RunOptions& options);

// SARIF 2.1.0-shaped report for --json.
std::string ToSarif(const RunResult& result);

}  // namespace censyslint
