// censyslint CLI: the repo's determinism, concurrency-contract, and
// architecture linter. All analysis lives in lint.{h,cc} (unit-tested by
// tests/censyslint_test.cc); this file is argument parsing, reporting, and
// the fixture self-test.
//
// Passes (see docs/LINTING.md for the full rule catalogue):
//
//   line-rules       per-line regex rules over comment/string-stripped text
//                    (raw-mutex, wall-clock, raw-random, thread-sleep,
//                    wall-timer, using-namespace-header, raw-file-io,
//                    raw-condvar, concurrency-contract)
//   layering         the #include graph checked against the declared layer
//                    DAG (--layers=tools/censyslint/layers.txt); upward or
//                    undeclared includes fail
//   lock-order       global lock-acquisition-order graph built from
//                    core::MutexLock / core::ReaderLock sites across all
//                    translation units; cycles (deadlock inversions) fail
//   unordered-iter   range-for / iterator loops over std::unordered_*
//                    containers in order-sensitive directories (pipeline,
//                    storage, engines, search) fail unless waived with a
//                    justification
//
// Waivers: `// censyslint:allow(rule-a,rule-b): justification` on the
// offending line. unordered-iter requires the justification text; other
// rules accept a bare allow.
//
// Usage:
//   censyslint [options] <file-or-dir>...
//     --layers=<path>     enable the layering pass against this DAG file
//     --baseline=<path>   suppress findings listed in this baseline file
//     --passes=<a,b,...>  run only the named passes (line-rules, layering,
//                         lock-order, unordered-iter)
//     --json[=<path>]     write a SARIF 2.1.0 report (stdout, or <path>)
//     --verbose           per-pass timing and finding counts
//     --self-test <dir>   fixture mode (see tests/lint_fixtures/README.md)
//
// Exit status: 0 clean (or self-test passes), 1 unsuppressed findings (or
// self-test mismatches), 2 usage/IO errors.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "lint.h"

namespace {

namespace fs = std::filesystem;
using censyslint::Finding;
using censyslint::RunOptions;
using censyslint::RunResult;

std::string ReadAll(const fs::path& path, bool* ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *ok = false;
    return "";
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *ok = true;
  return buffer.str();
}

// Runs the per-file fixture check: the file's `// expect: <rule-id>`
// comments (one per expected finding, any order) must match the rules the
// linter actually fires on it. Whole-program passes run on the single file
// so per-file fixtures can cover lock-order and unordered-iter too; the
// layering pass needs a DAG and is exercised by arch_* fixtures instead.
int SelfTestFile(const fs::path& file) {
  bool ok = false;
  const std::string raw = ReadAll(file, &ok);
  if (!ok) {
    std::fprintf(stderr, "self-test: cannot read %s\n", file.c_str());
    return 1;
  }
  static const std::regex kExpect(R"(//\s*expect:\s*([a-z-]+))");
  std::vector<std::string> expected;
  for (std::sregex_iterator it(raw.begin(), raw.end(), kExpect), end;
       it != end; ++it) {
    expected.push_back((*it)[1].str());
  }
  std::sort(expected.begin(), expected.end());

  RunOptions options;
  options.layering = false;
  const RunResult result = censyslint::RunAllPasses({file}, options);
  std::vector<std::string> got;
  got.reserve(result.findings.size());
  for (const Finding& f : result.findings) got.push_back(f.rule);
  std::sort(got.begin(), got.end());

  if (got == expected) return 0;
  std::fprintf(stderr, "self-test FAIL %s\n", file.generic_string().c_str());
  std::fprintf(stderr, "  expected:");
  for (const auto& r : expected) std::fprintf(stderr, " %s", r.c_str());
  std::fprintf(stderr, "\n  got:     ");
  for (const auto& r : got) std::fprintf(stderr, " %s", r.c_str());
  std::fprintf(stderr, "\n");
  return 1;
}

// Runs one whole-program fixture case: a directory named arch_* holding a
// src/ tree, an optional layers.txt, and an expect.txt listing the rule ids
// the case must fire (one per line, any order, # comments allowed). Line
// rules are disabled so arch fixtures stay focused on the cross-file
// passes.
int SelfTestArchCase(const fs::path& dir) {
  bool ok = false;
  const std::string expect_text = ReadAll(dir / "expect.txt", &ok);
  if (!ok) {
    std::fprintf(stderr, "self-test: %s has no expect.txt\n",
                 dir.generic_string().c_str());
    return 1;
  }
  std::vector<std::string> expected;
  for (const std::string& raw : censyslint::SplitLines(expect_text)) {
    std::string line = raw;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream stream(line);
    std::string rule;
    while (stream >> rule) expected.push_back(rule);
  }
  std::sort(expected.begin(), expected.end());

  RunOptions options;
  options.line_rules = false;
  const fs::path layers = dir / "layers.txt";
  if (fs::exists(layers)) {
    options.layers_path = layers.generic_string();
  } else {
    options.layering = false;
  }
  const fs::path src = dir / "src";
  const RunResult result = censyslint::RunAllPasses(
      {fs::exists(src) ? src : dir}, options);
  std::vector<std::string> got;
  got.reserve(result.findings.size());
  for (const Finding& f : result.findings) got.push_back(f.rule);
  std::sort(got.begin(), got.end());

  if (got == expected) return 0;
  std::fprintf(stderr, "self-test FAIL %s\n", dir.generic_string().c_str());
  std::fprintf(stderr, "  expected:");
  for (const auto& r : expected) std::fprintf(stderr, " %s", r.c_str());
  std::fprintf(stderr, "\n  got:     ");
  for (const auto& r : got) std::fprintf(stderr, " %s", r.c_str());
  std::fprintf(stderr, "\n");
  for (const Finding& f : result.findings) {
    std::fprintf(stderr, "    %s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }
  return 1;
}

int SelfTest(const std::vector<fs::path>& roots) {
  std::vector<fs::path> files;
  std::vector<fs::path> arch_cases;
  for (const fs::path& root : roots) {
    if (fs::is_directory(root)) {
      for (const auto& entry : fs::directory_iterator(root)) {
        if (entry.is_directory() &&
            entry.path().filename().string().rfind("arch_", 0) == 0) {
          arch_cases.push_back(entry.path());
          continue;
        }
        censyslint::CollectFiles(entry.path(), &files);
      }
    } else {
      censyslint::CollectFiles(root, &files);
    }
  }
  std::sort(files.begin(), files.end());
  std::sort(arch_cases.begin(), arch_cases.end());
  if (files.empty() && arch_cases.empty()) {
    std::fprintf(stderr, "censyslint --self-test: no fixture files found\n");
    return 2;
  }
  int failures = 0;
  for (const fs::path& file : files) failures += SelfTestFile(file);
  for (const fs::path& dir : arch_cases) failures += SelfTestArchCase(dir);
  std::printf("censyslint self-test: %zu fixture(s), %zu arch case(s), %d "
              "failure(s)\n",
              files.size(), arch_cases.size(), failures);
  return failures == 0 ? 0 : 1;
}

bool ParsePasses(const std::string& list, RunOptions* options) {
  options->line_rules = false;
  options->layering = false;
  options->lock_order = false;
  options->unordered_iter = false;
  std::istringstream stream(list);
  std::string pass;
  while (std::getline(stream, pass, ',')) {
    if (pass == "line-rules") {
      options->line_rules = true;
    } else if (pass == "layering") {
      options->layering = true;
    } else if (pass == "lock-order") {
      options->lock_order = true;
    } else if (pass == "unordered-iter") {
      options->unordered_iter = true;
    } else {
      std::fprintf(stderr, "censyslint: unknown pass `%s`\n", pass.c_str());
      return false;
    }
  }
  return true;
}

void PrintUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: censyslint [--layers=<path>] [--baseline=<path>]\n"
               "                  [--passes=<a,b,...>] [--json[=<path>]]\n"
               "                  [--verbose] [--self-test] <file-or-dir>...\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool self_test = false;
  bool verbose = false;
  bool json = false;
  std::string json_path;
  std::string baseline_path;
  RunOptions options;
  std::vector<fs::path> roots;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](std::string_view flag) {
      return arg.substr(flag.size());
    };
    if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json = true;
      json_path = value_of("--json=");
    } else if (arg.rfind("--layers=", 0) == 0) {
      options.layers_path = value_of("--layers=");
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = value_of("--baseline=");
    } else if (arg.rfind("--passes=", 0) == 0) {
      if (!ParsePasses(value_of("--passes="), &options)) return 2;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "censyslint: unknown option %s\n", arg.c_str());
      PrintUsage(stderr);
      return 2;
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) {
    PrintUsage(stderr);
    return 2;
  }
  if (self_test) return SelfTest(roots);

  for (const fs::path& root : roots) {
    if (!fs::exists(root)) {
      std::fprintf(stderr, "censyslint: no such path: %s\n",
                   root.generic_string().c_str());
      return 2;
    }
  }
  if (options.layering && !options.layers_path.empty() &&
      !fs::exists(options.layers_path)) {
    std::fprintf(stderr, "censyslint: no such layers file: %s\n",
                 options.layers_path.c_str());
    return 2;
  }

  RunResult result = censyslint::RunAllPasses(roots, options);
  if (!baseline_path.empty()) {
    bool ok = false;
    const std::string text = ReadAll(baseline_path, &ok);
    if (!ok) {
      std::fprintf(stderr, "censyslint: cannot read baseline: %s\n",
                   baseline_path.c_str());
      return 2;
    }
    censyslint::ApplyBaseline(censyslint::ParseBaseline(text),
                              &result.findings);
  }

  std::size_t active = 0;
  std::size_t suppressed = 0;
  for (const Finding& f : result.findings) {
    if (f.suppressed) {
      ++suppressed;
      continue;
    }
    ++active;
    std::printf("%s:%zu: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }

  if (json) {
    const std::string sarif = censyslint::ToSarif(result);
    if (json_path.empty()) {
      std::fwrite(sarif.data(), 1, sarif.size(), stdout);
    } else {
      std::ofstream out(json_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "censyslint: cannot write %s\n",
                     json_path.c_str());
        return 2;
      }
      out << sarif;
    }
  }

  if (verbose) {
    for (const censyslint::PassTiming& t : result.timings) {
      std::fprintf(stderr, "censyslint: pass %-14s %8.1f ms  %zu finding(s)\n",
                   t.pass.c_str(), t.micros / 1000.0, t.findings);
    }
  }
  std::printf("censyslint: %zu file(s), %zu finding(s), %zu suppressed\n",
              result.file_count, active, suppressed);
  return active == 0 ? 0 : 1;
}
