// censyslint: the repo's determinism and concurrency-contract linter.
//
// A token/regex scanner (no libclang) that enforces the invariants the
// capability annotations in core/thread_safety.h and the simulation's
// determinism story depend on:
//
//   raw-mutex                 no std::mutex / std::shared_mutex /
//                             std::lock_guard / std::unique_lock /
//                             std::shared_lock / std::scoped_lock outside
//                             core/thread_safety.h — every lock must be a
//                             capability-annotated core wrapper
//   wall-clock                no std::chrono::{steady,system,
//                             high_resolution}_clock reads outside
//                             core/clock.h (WallTimer is the one sanctioned
//                             real-time source)
//   raw-random                no std::random_device / rand() / srand() /
//                             std::mt19937 outside core/rng.* — simulation
//                             randomness flows through the seeded Rng
//   thread-sleep              no std::this_thread::sleep_for / sleep_until
//                             under src/ — simulated time never waits on
//                             wall time
//   using-namespace-header    no `using namespace` at file scope in headers
//   wall-timer                no direct WallTimer construction under src/
//                             outside core/clock.*, core/metrics.*, and
//                             core/trace.* — stage timing flows through
//                             metrics::ScopedTimer or TRACE_SPAN so every
//                             measurement is registered and exportable
//   raw-file-io               no direct file I/O (fstream, fopen, POSIX
//                             open/write/fsync/...) under src/ outside
//                             src/storage/ — durability and crash semantics
//                             live behind the WAL, and only the storage
//                             layer touches bytes on disk
//   raw-condvar               no std::condition_variable waits or notifies
//                             under src/engines/ or src/interrogate/ — the
//                             tick pipeline's stage handoff is lock-free
//                             (core::Ring / core::SlotBoard) so the commit
//                             thread helps execute instead of sleeping
//   concurrency-contract      every class/struct holding a core::Mutex or
//                             core::SharedMutex member must carry a
//                             "// Concurrency:" contract comment
//
// Findings can be waived per line with `// censyslint:allow(<rule-id>)`.
// `--self-test <dir>` checks fixture files against their embedded
// `// expect: <rule-id>` comments instead of reporting findings.
//
// Usage:
//   censyslint [--self-test] <file-or-dir>...
//
// Exit status: 0 when clean (or self-test passes), 1 on findings (or
// self-test mismatches), 2 on usage/IO errors.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Normalizes to forward slashes so suffix allowlists work on any platform.
std::string NormalizePath(const fs::path& p) {
  std::string s = p.generic_string();
  return s;
}

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

bool IsHeader(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp";
}

// Replaces comments and string/char literals with spaces (preserving
// newlines and line lengths where convenient) so rule regexes never match
// inside them. Line comments are preserved separately by the caller for
// waiver and contract-comment checks.
std::string StripCommentsAndStrings(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_delim;  // for raw strings: the )delim" terminator
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == 'R' && next == '"') {
          // Raw string literal: find the delimiter up to the '('.
          std::size_t paren = in.find('(', i + 2);
          if (paren == std::string::npos) {
            out += c;
            break;
          }
          raw_delim = ")" + in.substr(i + 2, paren - (i + 2)) + "\"";
          state = State::kRawString;
          out += ' ';
          i = paren;  // swallow through the opening paren
        } else if (c == '"') {
          state = State::kString;
          out += ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out += ' ';
        } else {
          out += ' ';
        }
        break;
      case State::kRawString:
        if (in.compare(i, raw_delim.size(), raw_delim) == 0) {
          state = State::kCode;
          for (std::size_t k = 0; k < raw_delim.size(); ++k) out += ' ';
          i += raw_delim.size() - 1;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream stream(text);
  while (std::getline(stream, line)) lines.push_back(line);
  return lines;
}

struct LineRule {
  std::string id;
  std::regex pattern;
  std::string message;
  // Path suffixes where the rule does not apply.
  std::vector<std::string> allowed_suffixes;
  bool headers_only = false;
  // Restrict to paths containing any of these substrings (empty =
  // everywhere given).
  std::vector<std::string> only_under_any;
  // Paths containing any of these substrings are exempt (directory-level
  // allowlist, e.g. all of src/storage/).
  std::vector<std::string> allowed_contains;
};

const std::vector<LineRule>& Rules() {
  static const std::vector<LineRule> kRules = {
      {"raw-mutex",
       std::regex(R"(std\s*::\s*(mutex|shared_mutex|recursive_mutex|timed_mutex|lock_guard|unique_lock|shared_lock|scoped_lock)\b)"),
       "raw standard-library lock; use the capability-annotated wrappers in "
       "core/thread_safety.h",
       {"core/thread_safety.h"},
       false,
       {}},
      {"wall-clock",
       std::regex(R"(std\s*::\s*chrono\s*::\s*(steady_clock|system_clock|high_resolution_clock)\b)"),
       "wall-clock read; real time flows only through WallTimer in "
       "core/clock.h",
       {"core/clock.h"},
       false,
       {}},
      {"raw-random",
       std::regex(R"(std\s*::\s*(random_device|mt19937|mt19937_64|default_random_engine)\b|(^|[^:\w])s?rand\s*\()"),
       "nondeterministic randomness; use the seeded core Rng (core/rng.h)",
       {"core/rng.h", "core/rng.cc"},
       false,
       {}},
      {"thread-sleep",
       std::regex(R"(std\s*::\s*this_thread\s*::\s*sleep_(for|until)\b|\bthis_thread\s*::\s*sleep_(for|until)\b)"),
       "sleeping on wall time inside the simulator; simulated time advances "
       "via SimClock",
       {},
       false,
       {"src/"}},
      {"wall-timer",
       std::regex(R"(\bWallTimer\b)"),
       "direct WallTimer use for stage timing; time spans through "
       "metrics::ScopedTimer or TRACE_SPAN (core/trace.h) so the "
       "measurement is registered and exportable",
       {"core/clock.h", "core/clock.cc", "core/metrics.h", "core/metrics.cc",
        "core/trace.h", "core/trace.cc"},
       false,
       {"src/"}},
      {"using-namespace-header",
       std::regex(R"(^\s*using\s+namespace\s+[A-Za-z_])"),
       "`using namespace` at file scope in a header leaks into every "
       "includer",
       {},
       true,
       {},
       {}},
      {"raw-file-io",
       std::regex(
           R"(std\s*::\s*(o|i)?fstream\b|std\s*::\s*filebuf\b|\b(fopen|freopen|fdopen|tmpfile)\s*\(|(^|[^\w:])::\s*(open|creat|write|pwrite|fsync|fdatasync|ftruncate)\s*\()"),
       "direct file I/O outside src/storage/; bytes on disk flow through "
       "the WAL-backed storage layer so crash consistency stays provable",
       {},
       false,
       {"src/"},
       {"src/storage/"}},
      {"raw-condvar",
       std::regex(
           R"(std\s*::\s*condition_variable(_any)?\b|\bnotify_(one|all)\s*\(|\.\s*wait(_for|_until)?\s*\()"),
       "blocking condvar handoff in the tick pipeline; stages stream "
       "through the lock-free core::Ring / core::SlotBoard (core/ring.h) "
       "so the commit thread can help instead of sleeping",
       {},
       false,
       {"src/engines/", "src/interrogate/"},
       {}},
  };
  return kRules;
}

bool PathAllowed(const std::string& path,
                 const std::vector<std::string>& suffixes) {
  return std::any_of(suffixes.begin(), suffixes.end(),
                     [&](const std::string& s) { return EndsWith(path, s); });
}

bool HasWaiver(const std::string& raw_line, const std::string& rule) {
  const std::string tag = "censyslint:allow(" + rule + ")";
  return raw_line.find(tag) != std::string::npos;
}

// The concurrency-contract rule: a file whose stripped text declares a
// core::Mutex / core::SharedMutex member must contain a "Concurrency:"
// comment somewhere (class-level contract). File granularity keeps the
// scanner honest without parsing class extents.
void CheckConcurrencyContract(const std::string& path,
                              const std::vector<std::string>& raw_lines,
                              const std::vector<std::string>& code_lines,
                              std::vector<Finding>* findings) {
  static const std::regex kLockMember(
      R"(\bcore\s*::\s*(Mutex|SharedMutex)\s+\w+\s*;)");
  std::size_t first_lock_line = 0;
  for (std::size_t i = 0; i < code_lines.size(); ++i) {
    if (std::regex_search(code_lines[i], kLockMember)) {
      first_lock_line = i + 1;
      break;
    }
  }
  if (first_lock_line == 0) return;
  for (const std::string& line : raw_lines) {
    if (line.find("Concurrency:") != std::string::npos) return;
  }
  if (HasWaiver(raw_lines[first_lock_line - 1], "concurrency-contract")) {
    return;
  }
  findings->push_back(
      {path, first_lock_line, "concurrency-contract",
       "class holds a core lock but the file has no \"// Concurrency:\" "
       "contract comment"});
}

void LintFile(const fs::path& file, std::vector<Finding>* findings) {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    findings->push_back({NormalizePath(file), 0, "io", "cannot read file"});
    return;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string raw = buffer.str();
  const std::string code = StripCommentsAndStrings(raw);
  const std::vector<std::string> raw_lines = SplitLines(raw);
  const std::vector<std::string> code_lines = SplitLines(code);
  const std::string path = NormalizePath(file);
  const bool header = IsHeader(file);

  for (const LineRule& rule : Rules()) {
    if (rule.headers_only && !header) continue;
    if (!rule.only_under_any.empty() &&
        std::none_of(rule.only_under_any.begin(), rule.only_under_any.end(),
                     [&](const std::string& s) {
                       return path.find(s) != std::string::npos;
                     })) {
      continue;
    }
    if (PathAllowed(path, rule.allowed_suffixes)) continue;
    if (std::any_of(rule.allowed_contains.begin(), rule.allowed_contains.end(),
                    [&](const std::string& s) {
                      return path.find(s) != std::string::npos;
                    })) {
      continue;
    }
    for (std::size_t i = 0; i < code_lines.size(); ++i) {
      if (!std::regex_search(code_lines[i], rule.pattern)) continue;
      if (i < raw_lines.size() && HasWaiver(raw_lines[i], rule.id)) continue;
      findings->push_back({path, i + 1, rule.id, rule.message});
    }
  }
  CheckConcurrencyContract(path, raw_lines, code_lines, findings);
}

void CollectFiles(const fs::path& root, std::vector<fs::path>* files) {
  if (fs::is_regular_file(root)) {
    if (IsSourceFile(root)) files->push_back(root);
    return;
  }
  if (!fs::is_directory(root)) return;
  for (auto it = fs::recursive_directory_iterator(root);
       it != fs::recursive_directory_iterator(); ++it) {
    const fs::path& p = it->path();
    const std::string name = p.filename().string();
    if (it->is_directory() &&
        (name.rfind("build", 0) == 0 || name == ".git")) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && IsSourceFile(p)) files->push_back(p);
  }
  std::sort(files->begin(), files->end());
}

// --self-test: every fixture file declares the rules it must fire with
// `// expect: <rule-id>` comments (one per line, any order); clean twins
// declare none and must produce zero findings.
int SelfTest(const std::vector<fs::path>& roots) {
  std::vector<fs::path> files;
  for (const fs::path& root : roots) CollectFiles(root, &files);
  if (files.empty()) {
    std::fprintf(stderr, "censyslint --self-test: no fixture files found\n");
    return 2;
  }
  static const std::regex kExpect(R"(//\s*expect:\s*([a-z-]+))");
  int failures = 0;
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string raw = buffer.str();

    std::vector<std::string> expected;
    for (std::sregex_iterator it(raw.begin(), raw.end(), kExpect), end;
         it != end; ++it) {
      expected.push_back((*it)[1].str());
    }
    std::sort(expected.begin(), expected.end());

    std::vector<Finding> findings;
    LintFile(file, &findings);
    std::vector<std::string> got;
    got.reserve(findings.size());
    for (const Finding& f : findings) got.push_back(f.rule);
    std::sort(got.begin(), got.end());

    if (got != expected) {
      ++failures;
      std::fprintf(stderr, "self-test FAIL %s\n",
                   NormalizePath(file).c_str());
      std::fprintf(stderr, "  expected:");
      for (const auto& r : expected) std::fprintf(stderr, " %s", r.c_str());
      std::fprintf(stderr, "\n  got:     ");
      for (const auto& r : got) std::fprintf(stderr, " %s", r.c_str());
      std::fprintf(stderr, "\n");
    }
  }
  std::printf("censyslint self-test: %zu fixture(s), %d failure(s)\n",
              files.size(), failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool self_test = false;
  std::vector<fs::path> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: censyslint [--self-test] <file-or-dir>...\n");
      return 0;
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr, "usage: censyslint [--self-test] <file-or-dir>...\n");
    return 2;
  }
  if (self_test) return SelfTest(roots);

  std::vector<fs::path> files;
  for (const fs::path& root : roots) {
    if (!fs::exists(root)) {
      std::fprintf(stderr, "censyslint: no such path: %s\n",
                   NormalizePath(root).c_str());
      return 2;
    }
    CollectFiles(root, &files);
  }
  std::vector<Finding> findings;
  for (const fs::path& file : files) LintFile(file, &findings);
  for (const Finding& f : findings) {
    std::printf("%s:%zu: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  std::printf("censyslint: %zu file(s), %zu finding(s)\n", files.size(),
              findings.size());
  return findings.empty() ? 0 : 1;
}
