#include "lint.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <regex>
#include <sstream>

namespace censyslint {
namespace {

namespace fs = std::filesystem;

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string NormalizePath(const fs::path& p) { return p.generic_string(); }

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

bool IsHeaderPath(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp";
}

}  // namespace

// --- text utilities -----------------------------------------------------------

// Replaces comments and string/char literals with spaces (preserving
// newlines) so rule regexes and token scans never match inside them.
std::string StripCommentsAndStrings(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_delim;  // for raw strings: the )delim" terminator
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == 'R' && next == '"') {
          std::size_t paren = in.find('(', i + 2);
          if (paren == std::string::npos) {
            out += c;
            break;
          }
          raw_delim = ")" + in.substr(i + 2, paren - (i + 2)) + "\"";
          state = State::kRawString;
          out += ' ';
          i = paren;  // swallow through the opening paren
        } else if (c == '"') {
          state = State::kString;
          out += ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out += ' ';
        } else {
          out += ' ';
        }
        break;
      case State::kRawString:
        if (in.compare(i, raw_delim.size(), raw_delim) == 0) {
          state = State::kCode;
          for (std::size_t k = 0; k < raw_delim.size(); ++k) out += ' ';
          i += raw_delim.size() - 1;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream stream(text);
  while (std::getline(stream, line)) lines.push_back(line);
  return lines;
}

std::optional<SourceFile> LoadSource(const fs::path& file) {
  std::ifstream in(file, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  SourceFile src;
  src.path = NormalizePath(file);
  src.header = IsHeaderPath(file);
  src.raw = buffer.str();
  src.code = StripCommentsAndStrings(src.raw);
  src.raw_lines = SplitLines(src.raw);
  src.code_lines = SplitLines(src.code);
  return src;
}

void CollectFiles(const fs::path& root, std::vector<fs::path>* files) {
  if (fs::is_regular_file(root)) {
    if (IsSourceFile(root)) files->push_back(root);
    return;
  }
  if (!fs::is_directory(root)) return;
  for (auto it = fs::recursive_directory_iterator(root);
       it != fs::recursive_directory_iterator(); ++it) {
    const fs::path& p = it->path();
    const std::string name = p.filename().string();
    if (it->is_directory() && (name.rfind("build", 0) == 0 || name == ".git")) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && IsSourceFile(p)) files->push_back(p);
  }
  std::sort(files->begin(), files->end());
}

// --- waivers ------------------------------------------------------------------

// censyslint:allow(rule-a,rule-b) or censyslint:allow(rule): justification
Waiver FindWaiver(std::string_view raw_line, std::string_view rule) {
  Waiver waiver;
  static const std::string kTag = "censyslint:allow(";
  const std::string line(raw_line);
  std::size_t at = line.find(kTag);
  while (at != std::string::npos) {
    const std::size_t open = at + kTag.size();
    const std::size_t close = line.find(')', open);
    if (close == std::string::npos) break;
    // Split the rule list on commas.
    std::string list = line.substr(open, close - open);
    std::istringstream stream(list);
    std::string item;
    bool matched = false;
    while (std::getline(stream, item, ',')) {
      const std::size_t b = item.find_first_not_of(" \t");
      const std::size_t e = item.find_last_not_of(" \t");
      if (b == std::string::npos) continue;
      if (item.substr(b, e - b + 1) == rule) {
        matched = true;
        break;
      }
    }
    if (matched) {
      waiver.present = true;
      // Justification: text after an immediately following colon.
      std::size_t rest = close + 1;
      if (rest < line.size() && line[rest] == ':') {
        std::size_t jb = line.find_first_not_of(" \t", rest + 1);
        if (jb != std::string::npos) {
          waiver.justification = line.substr(jb);
          while (!waiver.justification.empty() &&
                 std::isspace(
                     static_cast<unsigned char>(waiver.justification.back()))) {
            waiver.justification.pop_back();
          }
        }
      }
      return waiver;
    }
    at = line.find(kTag, close);
  }
  return waiver;
}

Waiver FindWaiverNear(const std::vector<std::string>& raw_lines,
                      std::size_t idx, std::string_view rule) {
  if (idx >= raw_lines.size()) return Waiver{};
  Waiver waiver = FindWaiver(raw_lines[idx], rule);
  if (waiver.present) return waiver;
  // Walk up through an immediately preceding comment-only block.
  for (std::size_t k = idx; k > 0;) {
    --k;
    const std::string& line = raw_lines[k];
    const std::size_t b = line.find_first_not_of(" \t");
    if (b == std::string::npos || line.compare(b, 2, "//") != 0) break;
    waiver = FindWaiver(line, rule);
    if (waiver.present) return waiver;
  }
  return Waiver{};
}

// --- per-line rules -----------------------------------------------------------

namespace {

struct LineRule {
  std::string id;
  // Cheap substring pre-filter: the regex only runs on lines containing
  // `hint` (empty hint = always run). Keeps per-line cost dominated by
  // memchr instead of regex machinery.
  std::string hint;
  std::regex pattern;
  std::string message;
  std::vector<std::string> allowed_suffixes;
  bool headers_only = false;
  std::vector<std::string> only_under_any;
  std::vector<std::string> allowed_contains;
};

// Compiled exactly once per process (function-local static), never
// per-file: rule regexes are the dominant lint cost and --verbose prints
// per-pass timings to keep it visible.
const std::vector<LineRule>& LineRules() {
  static const std::vector<LineRule> kRules = {
      {"raw-mutex", "std",
       std::regex(
           R"(std\s*::\s*(mutex|shared_mutex|recursive_mutex|timed_mutex|lock_guard|unique_lock|shared_lock|scoped_lock)\b)"),
       "raw standard-library lock; use the capability-annotated wrappers in "
       "core/thread_safety.h",
       {"core/thread_safety.h"},
       false,
       {},
       {}},
      {"wall-clock", "_clock",
       std::regex(
           R"(std\s*::\s*chrono\s*::\s*(steady_clock|system_clock|high_resolution_clock)\b)"),
       "wall-clock read; real time flows only through WallTimer in "
       "core/clock.h",
       {"core/clock.h"},
       false,
       {},
       {}},
      {"raw-random", "",
       std::regex(
           R"(std\s*::\s*(random_device|mt19937|mt19937_64|default_random_engine)\b|(^|[^:\w])s?rand\s*\()"),
       "nondeterministic randomness; use the seeded core Rng (core/rng.h)",
       {"core/rng.h", "core/rng.cc"},
       false,
       {},
       {}},
      {"thread-sleep", "sleep_",
       std::regex(
           R"(std\s*::\s*this_thread\s*::\s*sleep_(for|until)\b|\bthis_thread\s*::\s*sleep_(for|until)\b)"),
       "sleeping on wall time inside the simulator; simulated time advances "
       "via SimClock",
       {},
       false,
       {"src/"},
       {}},
      {"wall-timer", "WallTimer",
       std::regex(R"(\bWallTimer\b)"),
       "direct WallTimer use for stage timing; time spans through "
       "metrics::ScopedTimer or TRACE_SPAN (core/trace.h) so the "
       "measurement is registered and exportable",
       {"core/clock.h", "core/clock.cc", "core/metrics.h", "core/metrics.cc",
        "core/trace.h", "core/trace.cc"},
       false,
       {"src/"},
       {}},
      {"using-namespace-header", "using",
       std::regex(R"(^\s*using\s+namespace\s+[A-Za-z_])"),
       "`using namespace` at file scope in a header leaks into every "
       "includer",
       {},
       true,
       {},
       {}},
      {"raw-file-io", "",
       std::regex(
           R"(std\s*::\s*(o|i)?fstream\b|std\s*::\s*filebuf\b|\b(fopen|freopen|fdopen|tmpfile)\s*\(|(^|[^\w:])::\s*(open|creat|write|pwrite|fsync|fdatasync|ftruncate)\s*\()"),
       "direct file I/O outside src/storage/; bytes on disk flow through "
       "the WAL-backed storage layer so crash consistency stays provable",
       {},
       false,
       {"src/"},
       {"src/storage/"}},
      {"raw-condvar", "",
       std::regex(
           R"(std\s*::\s*condition_variable(_any)?\b|\bnotify_(one|all)\s*\(|\.\s*wait(_for|_until)?\s*\()"),
       "blocking condvar handoff in the tick pipeline; stages stream "
       "through the lock-free core::Ring / core::SlotBoard (core/ring.h) "
       "so the commit thread can help instead of sleeping",
       {},
       false,
       {"src/engines/", "src/interrogate/"},
       {}},
  };
  return kRules;
}

bool PathAllowed(const std::string& path,
                 const std::vector<std::string>& suffixes) {
  return std::any_of(suffixes.begin(), suffixes.end(),
                     [&](const std::string& s) { return EndsWith(path, s); });
}

// The concurrency-contract rule: a file whose stripped text declares a
// core::Mutex / core::SharedMutex member must contain a "Concurrency:"
// comment somewhere (class-level contract). File granularity keeps the
// scanner honest without parsing class extents.
void CheckConcurrencyContract(const SourceFile& file,
                              std::vector<Finding>* findings) {
  static const std::regex kLockMember(
      R"(\bcore\s*::\s*(Mutex|SharedMutex)\s+\w+\s*;)");
  std::size_t first_lock_line = 0;
  for (std::size_t i = 0; i < file.code_lines.size(); ++i) {
    if (file.code_lines[i].find("core") == std::string::npos) continue;
    if (std::regex_search(file.code_lines[i], kLockMember)) {
      first_lock_line = i + 1;
      break;
    }
  }
  if (first_lock_line == 0) return;
  for (const std::string& line : file.raw_lines) {
    if (line.find("Concurrency:") != std::string::npos) return;
  }
  if (FindWaiver(file.raw_lines[first_lock_line - 1], "concurrency-contract")
          .present) {
    return;
  }
  findings->push_back({file.path, first_lock_line, "concurrency-contract",
                       "class holds a core lock but the file has no \"// "
                       "Concurrency:\" contract comment",
                       "contract", false});
}

}  // namespace

void RunLineRules(const SourceFile& file, std::vector<Finding>* findings) {
  for (const LineRule& rule : LineRules()) {
    if (rule.headers_only && !file.header) continue;
    if (!rule.only_under_any.empty() &&
        std::none_of(rule.only_under_any.begin(), rule.only_under_any.end(),
                     [&](const std::string& s) {
                       return file.path.find(s) != std::string::npos;
                     })) {
      continue;
    }
    if (PathAllowed(file.path, rule.allowed_suffixes)) continue;
    if (std::any_of(rule.allowed_contains.begin(), rule.allowed_contains.end(),
                    [&](const std::string& s) {
                      return file.path.find(s) != std::string::npos;
                    })) {
      continue;
    }
    for (std::size_t i = 0; i < file.code_lines.size(); ++i) {
      if (!rule.hint.empty() &&
          file.code_lines[i].find(rule.hint) == std::string::npos) {
        continue;
      }
      if (!std::regex_search(file.code_lines[i], rule.pattern)) continue;
      if (i < file.raw_lines.size() &&
          FindWaiverNear(file.raw_lines, i, rule.id).present) {
        continue;
      }
      findings->push_back(
          {file.path, i + 1, rule.id, rule.message, rule.id, false});
    }
  }
  CheckConcurrencyContract(file, findings);
}

// --- layering pass ------------------------------------------------------------

LayerGraph ParseLayers(const std::string& text) {
  LayerGraph graph;
  std::size_t lineno = 0;
  for (const std::string& raw : SplitLines(text)) {
    ++lineno;
    std::string line = raw;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::size_t b = line.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      graph.errors.push_back("line " + std::to_string(lineno) +
                             ": expected `layer: deps...`");
      continue;
    }
    std::string layer = line.substr(b, colon - b);
    while (!layer.empty() &&
           std::isspace(static_cast<unsigned char>(layer.back()))) {
      layer.pop_back();
    }
    if (layer.empty() || layer.find(' ') != std::string::npos) {
      graph.errors.push_back("line " + std::to_string(lineno) +
                             ": bad layer name");
      continue;
    }
    if (graph.allowed.count(layer) != 0) {
      graph.errors.push_back("line " + std::to_string(lineno) +
                             ": duplicate layer `" + layer + "`");
      continue;
    }
    std::set<std::string>& deps = graph.allowed[layer];
    std::istringstream stream(line.substr(colon + 1));
    std::string dep;
    while (stream >> dep) deps.insert(dep);
  }
  // Every declared dependency must itself be a declared layer, or the DAG
  // silently grows undeclared nodes.
  for (const auto& [layer, deps] : graph.allowed) {
    for (const std::string& dep : deps) {
      if (graph.allowed.count(dep) == 0) {
        graph.errors.push_back("layer `" + layer + "` depends on undeclared `" +
                               dep + "`");
      }
    }
  }
  return graph;
}

namespace {

// Generic DFS cycle finder over string-keyed adjacency. Returns the first
// cycle found (deterministic: nodes and edges visited in sorted order),
// first element repeated at the end; empty when acyclic.
std::vector<std::string> FindCycle(
    const std::map<std::string, std::set<std::string>>& adj) {
  enum class Mark { kWhite, kGray, kBlack };
  std::map<std::string, Mark> mark;
  for (const auto& [node, deps] : adj) {
    mark[node] = Mark::kWhite;
    for (const std::string& d : deps) mark.emplace(d, Mark::kWhite);
  }
  std::vector<std::string> stack;
  std::vector<std::string> cycle;

  std::function<bool(const std::string&)> visit =
      [&](const std::string& node) -> bool {
    mark[node] = Mark::kGray;
    stack.push_back(node);
    const auto it = adj.find(node);
    if (it != adj.end()) {
      for (const std::string& next : it->second) {
        if (mark[next] == Mark::kBlack) continue;
        if (mark[next] == Mark::kGray) {
          const auto at = std::find(stack.begin(), stack.end(), next);
          cycle.assign(at, stack.end());
          cycle.push_back(next);
          return true;
        }
        if (visit(next)) return true;
      }
    }
    stack.pop_back();
    mark[node] = Mark::kBlack;
    return false;
  };
  for (const auto& [node, deps] : adj) {
    if (mark[node] == Mark::kWhite && visit(node)) return cycle;
  }
  return {};
}

std::string JoinCycle(const std::vector<std::string>& cycle) {
  std::string out;
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    if (i != 0) out += " -> ";
    out += cycle[i];
  }
  return out;
}

}  // namespace

std::vector<std::string> FindLayerCycle(const LayerGraph& graph) {
  return FindCycle(graph.allowed);
}

std::string LayerOf(std::string_view path) {
  // The segment after the last "src" component, when a further segment
  // (the file) follows it.
  std::vector<std::string> parts;
  std::string current;
  for (char c : path) {
    if (c == '/') {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(current);
  for (std::size_t i = parts.size(); i-- > 0;) {
    if (parts[i] == "src" && i + 2 < parts.size()) {
      return parts[i + 1];
    }
  }
  return "";
}

void RunLayeringPass(const std::vector<SourceFile>& files,
                     const LayerGraph& graph, const std::string& layers_path,
                     std::vector<Finding>* findings) {
  for (const std::string& error : graph.errors) {
    findings->push_back({layers_path, 0, "layering", "layers.txt: " + error,
                         "parse", false});
  }
  const std::vector<std::string> dag_cycle = FindLayerCycle(graph);
  if (!dag_cycle.empty()) {
    findings->push_back({layers_path, 0, "layering",
                         "declared layer graph is cyclic: " +
                             JoinCycle(dag_cycle),
                         "dag-cycle", false});
  }

  static const std::regex kInclude(R"re(^\s*#\s*include\s*"([^"]+)")re");
  for (const SourceFile& file : files) {
    const std::string layer = LayerOf(file.path);
    if (layer.empty()) continue;  // not under a src/<dir>/ tree
    if (!graph.Declares(layer)) {
      findings->push_back({file.path, 1, "layering",
                           "directory `" + layer +
                               "` is not declared in layers.txt; every "
                               "src/ directory must have a layer entry",
                           "undeclared:" + layer, false});
      continue;
    }
    const std::set<std::string>& allowed = graph.allowed.at(layer);
    for (std::size_t i = 0; i < file.raw_lines.size(); ++i) {
      std::smatch m;
      if (!std::regex_search(file.raw_lines[i], m, kInclude)) continue;
      const std::string target_path = m[1].str();
      const std::size_t slash = target_path.find('/');
      if (slash == std::string::npos) continue;  // same-directory include
      const std::string target = target_path.substr(0, slash);
      if (target == layer) continue;
      if (!graph.Declares(target)) continue;  // external (gtest etc.)
      if (allowed.count(target) != 0) continue;
      if (FindWaiverNear(file.raw_lines, i, "layering").present) continue;
      findings->push_back(
          {file.path, i + 1, "layering",
           "`" + layer + "` must not include `" + target_path +
               "`: the layer DAG (tools/censyslint/layers.txt) places `" +
               target + "` above `" + layer +
               "`; invert the dependency or move the shared type down",
           layer + "->" + target, false});
    }
  }
}

// --- lock-order pass ----------------------------------------------------------

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

const std::set<std::string>& CallKeywords() {
  static const std::set<std::string> kWords = {
      "if",      "for",     "while",   "switch",   "return", "sizeof",
      "alignof", "decltype", "static_cast", "dynamic_cast", "const_cast",
      "reinterpret_cast", "catch",   "new",      "delete", "assert",
      "defined", "noexcept", "throw", "operator", "int",    "char",
      "bool",    "void",    "auto",   "double",   "float",  "unsigned"};
  return kWords;
}

// Canonicalizes a lock constructor argument into a member-ish path:
// strips subscripts, dereferences, and casts; "shards_[s].mu" -> "shards_.mu".
std::string CanonicalLockExpr(std::string expr) {
  std::string out;
  int bracket = 0;
  for (char c : expr) {
    if (c == '[') {
      ++bracket;
      continue;
    }
    if (c == ']') {
      --bracket;
      continue;
    }
    if (bracket > 0) continue;
    if (std::isspace(static_cast<unsigned char>(c)) || c == '*' || c == '&') {
      continue;
    }
    out += c;
  }
  // "->" becomes "." so pointer and reference paths unify.
  std::string normalized;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i] == '-' && i + 1 < out.size() && out[i + 1] == '>') {
      normalized += '.';
      ++i;
    } else {
      normalized += out[i];
    }
  }
  return normalized;
}

}  // namespace

void ScanFunctions(const SourceFile& file, std::vector<FunctionInfo>* out) {
  const std::string& code = file.code;

  // Context stack entry per '{': what kind of scope it opened.
  struct Scope {
    enum class Kind { kBlock, kClass, kFunction, kOther } kind = Kind::kOther;
    std::string class_name;  // for kClass
  };
  std::vector<Scope> scopes;
  std::string current_class;           // innermost class/struct name
  FunctionInfo* current_fn = nullptr;  // non-null inside a function body
  int fn_scope_depth = 0;              // scopes.size() when the body opened

  // Live acquisitions inside the current function, with the scope depth at
  // which each must pop.
  struct Live {
    std::string lock;
    int close_depth;
  };
  std::vector<Live> live;

  std::size_t line = 1;
  std::size_t prefix_start = 0;  // start of the "statement prefix" text

  static const std::regex kClassDecl(R"(\b(class|struct)\s+([A-Za-z_]\w*))");
  static const std::regex kQualifiedFn(
      R"(([A-Za-z_]\w*)\s*::\s*~?([A-Za-z_]\w*)\s*\($)");
  static const std::regex kPlainFn(R"((~?[A-Za-z_]\w*)\s*\($)");
  static const std::regex kAcquire(
      R"(\b(?:core\s*::\s*)?(MutexLock|ReaderLock)\s+\w+\s*[({]([^)}]*)[)}])");
  static const std::regex kCall(R"((\.|->)?\s*([A-Za-z_]\w*)\s*\()");

  auto classify_brace = [&](std::size_t brace_pos) -> Scope {
    Scope scope;
    std::string prefix = code.substr(prefix_start, brace_pos - prefix_start);
    // Class/struct scope: a class-decl with no parameter list after it.
    std::smatch m;
    std::string tail = prefix;
    if (std::regex_search(tail, m, kClassDecl)) {
      const std::string after = m.suffix().str();
      if (after.find('(') == std::string::npos) {
        scope.kind = Scope::Kind::kClass;
        // Use the LAST class-decl in the prefix.
        std::string name = m[2].str();
        std::string rest = after;
        std::smatch m2;
        while (std::regex_search(rest, m2, kClassDecl)) {
          name = m2[2].str();
          rest = m2.suffix().str();
        }
        scope.class_name = name;
        return scope;
      }
    }
    // Function body: the prefix contains a parameter list. Find the first
    // '(' whose preceding identifier is not a keyword; constructor
    // initializer lists and trailing annotations follow it.
    for (std::size_t i = 0; i < prefix.size(); ++i) {
      if (prefix[i] != '(') continue;
      std::string head = prefix.substr(0, i + 1);
      std::smatch fm;
      std::string cls;
      std::string name;
      if (std::regex_search(head, fm, kQualifiedFn)) {
        cls = fm[1].str();
        name = fm[2].str();
      } else if (std::regex_search(head, fm, kPlainFn)) {
        name = fm[1].str();
      }
      if (name.empty() || CallKeywords().count(name) != 0 ||
          name == "function") {
        continue;  // control flow / cast / std::function return type
      }
      // Already inside a body: a function-looking brace here is a lambda
      // or call-argument block — treat as a plain block of the enclosing
      // function. (Also keeps `current_fn` stable: pushing here could
      // reallocate *out and dangle the pointer.)
      if (current_fn != nullptr) {
        scope.kind = Scope::Kind::kBlock;
        return scope;
      }
      scope.kind = Scope::Kind::kFunction;
      FunctionInfo info;
      info.class_name = cls.empty() ? current_class : cls;
      info.name = name;
      info.file = file.path;
      info.line = line;
      out->push_back(std::move(info));
      return scope;
    }
    scope.kind = Scope::Kind::kBlock;
    return scope;
  };

  auto lock_id = [&](const std::string& expr) {
    const std::string canon = CanonicalLockExpr(expr);
    const std::string owner = current_fn != nullptr && !current_fn->class_name.empty()
                                  ? current_fn->class_name
                                  : file.path;
    return owner + "::" + canon;
  };

  auto scan_statement = [&](std::size_t begin, std::size_t end) {
    if (current_fn == nullptr || begin >= end) return;
    const std::string stmt = code.substr(begin, end - begin);
    const std::size_t stmt_line =
        line - std::count(stmt.begin(), stmt.end(), '\n');
    // Acquisitions.
    std::smatch m;
    std::string rest = stmt;
    if (stmt.find("Lock") != std::string::npos) {
      while (std::regex_search(rest, m, kAcquire)) {
        FunctionInfo::Acquisition acq;
        acq.lock = lock_id(m[2].str());
        acq.line = stmt_line;
        acq.depth = static_cast<int>(scopes.size()) - fn_scope_depth;
        acq.reader = m[1].str() == "ReaderLock";
        for (const Live& held : live) {
          if (held.lock == acq.lock) continue;
          current_fn->nested.push_back({held.lock, acq.lock, stmt_line});
        }
        live.push_back({acq.lock, static_cast<int>(scopes.size())});
        current_fn->acquisitions.push_back(std::move(acq));
        rest = m.suffix().str();
      }
    }
    // Calls (for cross-function propagation).
    rest = stmt;
    while (std::regex_search(rest, m, kCall)) {
      const std::string name = m[2].str();
      const bool member = m[1].matched && m[1].length() > 0;
      if (CallKeywords().count(name) == 0 && name != "MutexLock" &&
          name != "ReaderLock" && name != "ThreadRoleGuard") {
        FunctionInfo::Call call;
        call.callee = name;
        call.member_syntax = member;
        call.line = stmt_line;
        for (const Live& held : live) call.held.push_back(held.lock);
        current_fn->calls.push_back(std::move(call));
      }
      rest = m.suffix().str();
    }
  };

  std::size_t i = 0;
  std::size_t stmt_start = 0;
  while (i < code.size()) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == '{') {
      scan_statement(stmt_start, i);
      Scope scope = classify_brace(i);
      if (scope.kind == Scope::Kind::kFunction) {
        current_fn = &out->back();
        fn_scope_depth = static_cast<int>(scopes.size());
        live.clear();
      }
      if (scope.kind == Scope::Kind::kClass) current_class = scope.class_name;
      scopes.push_back(scope);
      prefix_start = i + 1;
      stmt_start = i + 1;
      ++i;
      continue;
    }
    if (c == '}') {
      scan_statement(stmt_start, i);
      if (!scopes.empty()) {
        const Scope closed = scopes.back();
        scopes.pop_back();
        const int depth_now = static_cast<int>(scopes.size());
        live.erase(std::remove_if(live.begin(), live.end(),
                                  [&](const Live& held) {
                                    return held.close_depth > depth_now;
                                  }),
                   live.end());
        if (closed.kind == Scope::Kind::kFunction &&
            depth_now == fn_scope_depth) {
          current_fn = nullptr;
          live.clear();
        }
        if (closed.kind == Scope::Kind::kClass) {
          // Restore the next-innermost class name.
          current_class.clear();
          for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
            if (it->kind == Scope::Kind::kClass) {
              current_class = it->class_name;
              break;
            }
          }
        }
      }
      prefix_start = i + 1;
      stmt_start = i + 1;
      ++i;
      continue;
    }
    if (c == ';') {
      scan_statement(stmt_start, i + 1);
      prefix_start = i + 1;
      stmt_start = i + 1;
      ++i;
      continue;
    }
    ++i;
  }
}

std::vector<LockEdge> BuildLockOrderGraph(
    const std::vector<FunctionInfo>& functions) {
  // Method name -> indices, for member-syntax call resolution.
  std::map<std::string, std::vector<std::size_t>> by_name;
  // (class, name) and (file, name) for bare-call resolution.
  std::map<std::string, std::vector<std::size_t>> by_class_name;
  std::map<std::string, std::vector<std::size_t>> by_file_name;
  for (std::size_t i = 0; i < functions.size(); ++i) {
    const FunctionInfo& fn = functions[i];
    by_name[fn.name].push_back(i);
    by_class_name[fn.class_name + "::" + fn.name].push_back(i);
    by_file_name[fn.file + "::" + fn.name].push_back(i);
  }

  auto resolve = [&](const FunctionInfo& caller,
                     const FunctionInfo::Call& call)
      -> const std::vector<std::size_t>* {
    if (call.member_syntax) {
      const auto it = by_name.find(call.callee);
      return it == by_name.end() ? nullptr : &it->second;
    }
    const auto same_class =
        by_class_name.find(caller.class_name + "::" + call.callee);
    if (same_class != by_class_name.end()) return &same_class->second;
    const auto same_file = by_file_name.find(caller.file + "::" + call.callee);
    return same_file == by_file_name.end() ? nullptr : &same_file->second;
  };

  // Fixpoint: locks(f) = direct locks + union of locks(callees).
  std::vector<std::set<std::string>> locks(functions.size());
  for (std::size_t i = 0; i < functions.size(); ++i) {
    for (const auto& acq : functions[i].acquisitions) locks[i].insert(acq.lock);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < functions.size(); ++i) {
      for (const auto& call : functions[i].calls) {
        const std::vector<std::size_t>* callees = resolve(functions[i], call);
        if (callees == nullptr) continue;
        for (std::size_t j : *callees) {
          for (const std::string& lock : locks[j]) {
            if (locks[i].insert(lock).second) changed = true;
          }
        }
      }
    }
  }

  // Edges: direct nesting plus held-at-call-site -> callee locks. Self
  // edges are skipped: token-level name collisions make same-lock
  // reacquisition too noisy to assert here, and clang's thread-safety
  // analysis already rejects genuine re-entry on annotated paths.
  std::vector<LockEdge> edges;
  std::set<std::string> seen;
  auto add_edge = [&](const std::string& from, const std::string& to,
                      const std::string& file, std::size_t line,
                      const std::string& via) {
    if (from == to) return;
    if (!seen.insert(from + "\x1f" + to).second) return;
    edges.push_back({from, to, file, line, via});
  };
  for (std::size_t i = 0; i < functions.size(); ++i) {
    const FunctionInfo& fn = functions[i];
    for (const auto& pair : fn.nested) {
      add_edge(pair.from, pair.to, fn.file, pair.line, "");
    }
    for (const auto& call : fn.calls) {
      if (call.held.empty()) continue;
      const std::vector<std::size_t>* callees = resolve(fn, call);
      if (callees == nullptr) continue;
      for (std::size_t j : *callees) {
        for (const std::string& lock : locks[j]) {
          for (const std::string& held : call.held) {
            add_edge(held, lock, fn.file, call.line,
                     "via call to " + call.callee + "()");
          }
        }
      }
    }
  }
  return edges;
}

std::vector<std::string> FindLockCycle(const std::vector<LockEdge>& edges) {
  std::map<std::string, std::set<std::string>> adj;
  for (const LockEdge& edge : edges) adj[edge.from].insert(edge.to);
  return FindCycle(adj);
}

void RunLockOrderPass(const std::vector<SourceFile>& files,
                      std::vector<Finding>* findings) {
  std::vector<FunctionInfo> functions;
  for (const SourceFile& file : files) ScanFunctions(file, &functions);
  std::vector<LockEdge> edges = BuildLockOrderGraph(functions);

  // Remove edges waived at their provenance line.
  std::map<std::string, const SourceFile*> by_path;
  for (const SourceFile& file : files) by_path[file.path] = &file;
  edges.erase(std::remove_if(edges.begin(), edges.end(),
                             [&](const LockEdge& edge) {
                               const auto it = by_path.find(edge.file);
                               if (it == by_path.end()) return false;
                               const auto& lines = it->second->raw_lines;
                               if (edge.line == 0 ||
                                   edge.line > lines.size()) {
                                 return false;
                               }
                               return FindWaiverNear(lines, edge.line - 1,
                                                     "lock-order")
                                   .present;
                             }),
              edges.end());

  // Report every cycle (peel one edge after each report so distinct
  // inversions surface in one run).
  std::map<std::string, std::pair<std::string, std::size_t>> provenance;
  for (const LockEdge& edge : edges) {
    provenance.emplace(edge.from + "\x1f" + edge.to,
                       std::make_pair(edge.file, edge.line));
  }
  std::vector<LockEdge> working = edges;
  for (int guard = 0; guard < 32; ++guard) {
    const std::vector<std::string> cycle = FindLockCycle(working);
    if (cycle.empty()) break;
    // Canonical signature: rotate so the smallest lock id leads.
    std::vector<std::string> nodes(cycle.begin(), cycle.end() - 1);
    const auto smallest = std::min_element(nodes.begin(), nodes.end());
    std::rotate(nodes.begin(), smallest, nodes.end());
    std::string signature;
    for (const std::string& n : nodes) {
      if (!signature.empty()) signature += "->";
      signature += n;
    }
    const auto prov =
        provenance.find(cycle[0] + "\x1f" + cycle[1]);
    const std::string file =
        prov != provenance.end() ? prov->second.first : "<unknown>";
    const std::size_t line = prov != provenance.end() ? prov->second.second : 0;
    findings->push_back(
        {file, line, "lock-order",
         "lock-acquisition-order cycle (potential deadlock inversion): " +
             JoinCycle(cycle) +
             "; pick one global order for these locks and normalize every "
             "path to it",
         signature, false});
    // Peel the reported cycle's first edge and look again.
    working.erase(std::remove_if(working.begin(), working.end(),
                                 [&](const LockEdge& e) {
                                   return e.from == cycle[0] &&
                                          e.to == cycle[1];
                                 }),
                  working.end());
  }
}

// --- unordered-iter pass ------------------------------------------------------

namespace {

// Matches the '<'..'>' template argument extent starting at `open` (which
// must index a '<'); returns the index one past the matching '>'.
std::size_t SkipTemplateArgs(const std::string& code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == '<') ++depth;
    if (code[i] == '>') {
      --depth;
      if (depth == 0) return i + 1;
    }
    if (code[i] == ';') break;  // malformed / macro soup; bail
  }
  return std::string::npos;
}

const std::set<std::string>& OrderSensitiveDirs() {
  static const std::set<std::string> kDirs = {"pipeline", "storage", "engines",
                                              "search"};
  return kDirs;
}

}  // namespace

std::set<std::string> CollectUnorderedNames(
    const std::vector<SourceFile>& files) {
  std::set<std::string> names;
  std::set<std::string> alias_types;  // using X = std::unordered_map<...>;
  static const std::regex kDecl(R"(\bunordered_(map|set|multimap|multiset)\b)");
  static const std::regex kIdent(R"(^\s*[&*]*\s*([A-Za-z_]\w*))");

  auto scan = [&](const SourceFile& file) {
    const std::string& code = file.code;
    for (std::sregex_iterator it(code.begin(), code.end(), kDecl), end;
         it != end; ++it) {
      const std::size_t decl_at = static_cast<std::size_t>(it->position(0));
      // `using Alias = std::unordered_map<...>` declares a type, not a
      // variable; remember the alias so its declarations count too.
      {
        const std::size_t line_start = code.rfind('\n', decl_at);
        const std::string before = code.substr(
            line_start == std::string::npos ? 0 : line_start + 1,
            decl_at - (line_start == std::string::npos ? 0 : line_start + 1));
        std::smatch am;
        static const std::regex kUsing(
            R"(\busing\s+([A-Za-z_]\w*)\s*=\s*(std\s*::\s*)?$)");
        if (std::regex_search(before, am, kUsing)) {
          alias_types.insert(am[1].str());
          continue;
        }
      }
      // The template argument list must open right after the token, else
      // this is `#include <unordered_map>` or a bare mention, and scanning
      // ahead for '<' would bind some unrelated declaration's name.
      std::size_t open = decl_at + static_cast<std::size_t>(it->length(0));
      while (open < code.size() &&
             (code[open] == ' ' || code[open] == '\t')) {
        ++open;
      }
      if (open >= code.size() || code[open] != '<') continue;
      const std::size_t after = SkipTemplateArgs(code, open);
      if (after == std::string::npos) continue;
      const std::string rest = code.substr(after, 96);
      if (!rest.empty() && rest[0] == ':') continue;  // ::iterator etc.
      std::smatch m;
      if (std::regex_search(rest, m, kIdent)) {
        names.insert(m[1].str());
      }
    }
  };
  for (const SourceFile& file : files) scan(file);

  // Declarations through an unordered alias type: `Alias name;`.
  if (!alias_types.empty()) {
    for (const SourceFile& file : files) {
      for (const std::string& alias : alias_types) {
        const std::regex decl(
            "\\b" + alias + R"(\s+([A-Za-z_]\w*)\s*(;|=|\{|\())");
        const std::string& code = file.code;
        for (std::sregex_iterator it(code.begin(), code.end(), decl), end;
             it != end; ++it) {
          names.insert((*it)[1].str());
        }
      }
    }
  }
  return names;
}

bool InOrderSensitiveDir(std::string_view path) {
  const std::string layer = LayerOf(path);
  return OrderSensitiveDirs().count(layer) != 0;
}

void RunUnorderedIterPass(const std::vector<SourceFile>& files,
                          std::vector<Finding>* findings) {
  const std::set<std::string> unordered = CollectUnorderedNames(files);
  if (unordered.empty()) return;

  static const std::regex kLastIdent(R"(([A-Za-z_]\w*)[^A-Za-z_]*$)");
  static const std::regex kIterLoop(
      R"(\bfor\s*\([^:;)]*=\s*([\w.\[\]\->]+)\s*\.\s*c?begin\s*\()");

  auto trailing_ident = [](const std::string& expr) -> std::string {
    std::smatch m;
    if (std::regex_search(expr, m, kLastIdent)) return m[1].str();
    return "";
  };

  for (const SourceFile& file : files) {
    if (!InOrderSensitiveDir(file.path)) continue;
    for (std::size_t i = 0; i < file.code_lines.size(); ++i) {
      const std::string& line = file.code_lines[i];
      std::string container;

      // Range-for: `for (<decl> : <expr>)` with no ';' in the parens.
      const std::size_t at = line.find("for");
      if (at != std::string::npos) {
        const std::size_t open = line.find('(', at);
        if (open != std::string::npos &&
            (at == 0 || !IsIdentChar(line[at - 1])) &&
            !IsIdentChar(line[at + 3])) {
          // Find the matching ')' on this line (range-fors here are
          // single-line in practice; multi-line loops fall to the
          // iterator pattern below).
          int depth = 0;
          std::size_t close = std::string::npos;
          int colon = -1;
          for (std::size_t k = open; k < line.size(); ++k) {
            if (line[k] == '(') ++depth;
            if (line[k] == ')') {
              --depth;
              if (depth == 0) {
                close = k;
                break;
              }
            }
            if (line[k] == ':' && depth == 1 && colon < 0 &&
                (k == 0 || line[k - 1] != ':') &&
                (k + 1 >= line.size() || line[k + 1] != ':')) {
              colon = static_cast<int>(k);
            }
          }
          const bool semicolon_in_parens =
              close != std::string::npos &&
              line.find(';', open) < close;  // classic for, not range-for
          if (close != std::string::npos && colon > 0 &&
              !semicolon_in_parens) {
            const std::string expr =
                line.substr(colon + 1, close - colon - 1);
            container = trailing_ident(expr);
          }
        }
      }
      if (container.empty()) {
        std::smatch m;
        if (std::regex_search(line, m, kIterLoop)) {
          container = trailing_ident(m[1].str());
        }
      }
      if (container.empty() || unordered.count(container) == 0) continue;

      const Waiver waiver =
          i < file.raw_lines.size()
              ? FindWaiverNear(file.raw_lines, i, "unordered-iter")
              : Waiver{};
      if (waiver.present && !waiver.justification.empty()) continue;
      std::string message =
          "iteration over std::unordered_* container `" + container +
          "` in order-sensitive code: hash-map order here can leak into "
          "journal bytes, digests, or served output; iterate a sorted "
          "copy, keep an ordered sibling index, or switch the container";
      if (waiver.present) {
        message +=
            " (waiver present but missing a justification — write "
            "`censyslint:allow(unordered-iter): <why order cannot "
            "escape>`)";
      }
      findings->push_back(
          {file.path, i + 1, "unordered-iter", message, container, false});
    }
  }
}

// --- baseline -----------------------------------------------------------------

Baseline ParseBaseline(const std::string& text) {
  Baseline baseline;
  for (const std::string& raw : SplitLines(text)) {
    std::string line = raw;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::size_t b = line.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    const std::size_t p1 = line.find('|', b);
    if (p1 == std::string::npos) continue;
    const std::size_t p2 = line.find('|', p1 + 1);
    Baseline::Entry entry;
    entry.rule = line.substr(b, p1 - b);
    if (p2 == std::string::npos) {
      entry.path_suffix = line.substr(p1 + 1);
    } else {
      entry.path_suffix = line.substr(p1 + 1, p2 - p1 - 1);
      entry.key = line.substr(p2 + 1);
    }
    while (!entry.key.empty() &&
           std::isspace(static_cast<unsigned char>(entry.key.back()))) {
      entry.key.pop_back();
    }
    baseline.entries.push_back(std::move(entry));
  }
  return baseline;
}

void ApplyBaseline(const Baseline& baseline, std::vector<Finding>* findings) {
  for (Finding& finding : *findings) {
    for (const Baseline::Entry& entry : baseline.entries) {
      if (entry.rule != finding.rule) continue;
      if (!EndsWith(finding.file, entry.path_suffix)) continue;
      if (!entry.key.empty() && entry.key != finding.key) continue;
      finding.suppressed = true;
      break;
    }
  }
}

// --- orchestration ------------------------------------------------------------

namespace {

// Monotonic timing for --verbose pass costs. The linter runs outside the
// simulator, so reading the host clock here is sanctioned.
double NowMicros() {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count());
}

}  // namespace

RunResult RunAllPasses(const std::vector<fs::path>& roots,
                       const RunOptions& options) {
  RunResult result;
  std::vector<fs::path> paths;
  for (const fs::path& root : roots) CollectFiles(root, &paths);
  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const fs::path& path : paths) {
    if (auto src = LoadSource(path)) {
      files.push_back(std::move(*src));
    } else {
      result.findings.push_back(
          {NormalizePath(path), 0, "io", "cannot read file", "io", false});
    }
  }
  result.file_count = files.size();

  auto timed = [&](const char* name, bool enabled, auto&& body) {
    if (!enabled) return;
    const double start = NowMicros();
    const std::size_t before = result.findings.size();
    body();
    result.timings.push_back(
        {name, NowMicros() - start, result.findings.size() - before});
  };

  timed("line-rules", options.line_rules, [&] {
    for (const SourceFile& file : files) RunLineRules(file, &result.findings);
  });
  timed("layering", options.layering && !options.layers_path.empty(), [&] {
    std::ifstream in(options.layers_path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!in && buffer.str().empty()) {
      result.findings.push_back({options.layers_path, 0, "layering",
                                 "cannot read layers file", "io", false});
      return;
    }
    const LayerGraph graph = ParseLayers(buffer.str());
    RunLayeringPass(files, graph, options.layers_path, &result.findings);
  });
  timed("lock-order", options.lock_order,
        [&] { RunLockOrderPass(files, &result.findings); });
  timed("unordered-iter", options.unordered_iter,
        [&] { RunUnorderedIterPass(files, &result.findings); });
  return result;
}

// --- SARIF --------------------------------------------------------------------

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string ToSarif(const RunResult& result) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n    {\n"
      << "      \"tool\": {\n        \"driver\": {\n"
      << "          \"name\": \"censyslint\",\n"
      << "          \"informationUri\": \"docs/LINTING.md\",\n"
      << "          \"rules\": [\n";
  std::set<std::string> rules;
  for (const Finding& f : result.findings) rules.insert(f.rule);
  std::size_t k = 0;
  for (const std::string& rule : rules) {
    out << "            {\"id\": \"" << JsonEscape(rule) << "\"}"
        << (++k == rules.size() ? "\n" : ",\n");
  }
  out << "          ]\n        }\n      },\n"
      << "      \"results\": [\n";
  for (std::size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& f = result.findings[i];
    out << "        {\n"
        << "          \"ruleId\": \"" << JsonEscape(f.rule) << "\",\n"
        << "          \"level\": \"" << (f.suppressed ? "note" : "error")
        << "\",\n"
        << "          \"message\": {\"text\": \"" << JsonEscape(f.message)
        << "\"},\n";
    if (f.suppressed) {
      out << "          \"suppressions\": [{\"kind\": \"external\"}],\n";
    }
    out << "          \"partialFingerprints\": {\"censyslintKey\": \""
        << JsonEscape(f.key) << "\"},\n"
        << "          \"locations\": [\n"
        << "            {\"physicalLocation\": {\"artifactLocation\": "
           "{\"uri\": \""
        << JsonEscape(f.file) << "\"}, \"region\": {\"startLine\": "
        << (f.line == 0 ? 1 : f.line) << "}}}\n"
        << "          ]\n        }"
        << (i + 1 == result.findings.size() ? "\n" : ",\n");
  }
  out << "      ]\n    }\n  ]\n}\n";
  return out.str();
}

}  // namespace censyslint
