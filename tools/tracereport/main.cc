// tracereport: summarizes a Chrome trace-event dump from core/trace.
//
// Ingests the JSON written by trace::Dump() (or any Chrome-trace file of
// complete "X" events) and prints a per-category latency table — count,
// p50, p99, and total duration per span name — so benches and tests can
// assert on stage budgets without eyeballing raw JSON in chrome://tracing.
//
// Usage:
//   tracereport [--category <cat>] [--min-count N] [--by-thread]
//               <trace.json>
//
// --by-thread splits every (category, name) row per emitting thread id,
// which is how the pipeline benches show worker-vs-commit overlap (a
// serialized pipeline puts every span on one tid; the staged one spreads
// interrogation spans across workers while commit spans stay on tid 0).
//
// Exit status: 0 on success (even for an empty trace), 2 on IO/parse
// errors.
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

// Minimal recursive-descent JSON reader: just enough structure to walk the
// trace file. Values we do not need (nested args, pids) are skipped.
class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  bool error() const { return error_; }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char Peek() {
    SkipWs();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return Fail();
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail();
            const unsigned code = static_cast<unsigned>(
                std::strtoul(std::string(text_.substr(pos_, 4)).c_str(),
                             nullptr, 16));
            pos_ += 4;
            // Trace args are escaped control bytes or ASCII; anything
            // wider is preserved as '?' (the report never prints args).
            *out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default: *out += esc;
        }
      } else {
        *out += c;
      }
    }
    return Fail();
  }

  bool ParseNumber(double* out) {
    SkipWs();
    const char* start = text_.data() + pos_;
    char* end = nullptr;
    *out = std::strtod(start, &end);
    if (end == start) return Fail();
    pos_ += static_cast<std::size_t>(end - start);
    return true;
  }

  // Skips any single JSON value (object, array, string, number, literal).
  bool SkipValue() {
    SkipWs();
    const char c = Peek();
    if (c == '{' || c == '[') {
      const char close = c == '{' ? '}' : ']';
      Consume(c);
      if (Consume(close)) return true;
      while (!error_) {
        if (!SkipValueInObjectOrArray(c == '{')) return false;
        if (Consume(close)) return true;
        if (!Consume(',')) return Fail();
      }
      return false;
    }
    if (c == '"') {
      std::string ignored;
      return ParseString(&ignored);
    }
    if (c == 't' || c == 'f' || c == 'n') {
      while (pos_ < text_.size() &&
             std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      return true;
    }
    double ignored;
    return ParseNumber(&ignored);
  }

 private:
  bool SkipValueInObjectOrArray(bool is_object) {
    if (is_object) {
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return Fail();
    }
    return SkipValue();
  }

  bool Fail() {
    error_ = true;
    return false;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  bool error_ = false;
};

struct SpanKey {
  std::string category;
  std::string name;
  // Thread id; only populated (and only varies) under --by-thread.
  long long tid = 0;
  bool operator<(const SpanKey& o) const {
    if (category != o.category) return category < o.category;
    if (name != o.name) return name < o.name;
    return tid < o.tid;
  }
};

struct SpanAgg {
  std::vector<double> durations_us;
  double total_us = 0;
};

double Quantile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

int Report(const std::string& path, const std::string& category_filter,
           std::size_t min_count, bool by_thread) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "tracereport: cannot read %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  // Find the traceEvents array, then walk its event objects.
  const std::size_t events_at = text.find("\"traceEvents\"");
  if (events_at == std::string::npos) {
    std::fprintf(stderr, "tracereport: %s has no traceEvents array\n",
                 path.c_str());
    return 2;
  }
  JsonReader reader(std::string_view(text).substr(events_at + 13));
  if (!reader.Consume(':') || !reader.Consume('[')) {
    std::fprintf(stderr, "tracereport: malformed traceEvents in %s\n",
                 path.c_str());
    return 2;
  }

  std::map<SpanKey, SpanAgg> spans;
  std::size_t events = 0;
  if (!reader.Consume(']')) {
    do {
      if (!reader.Consume('{')) break;
      std::string ph, cat, name;
      double dur = 0, tid = 0;
      bool have_dur = false;
      if (!reader.Consume('}')) {
        do {
          std::string key;
          if (!reader.ParseString(&key) || !reader.Consume(':')) break;
          if (key == "ph") {
            reader.ParseString(&ph);
          } else if (key == "cat") {
            reader.ParseString(&cat);
          } else if (key == "name") {
            reader.ParseString(&name);
          } else if (key == "dur") {
            have_dur = reader.ParseNumber(&dur);
          } else if (key == "tid") {
            reader.ParseNumber(&tid);
          } else {
            reader.SkipValue();
          }
        } while (reader.Consume(','));
        if (!reader.Consume('}')) break;
      }
      if (ph == "X" && have_dur &&
          (category_filter.empty() || cat == category_filter)) {
        SpanAgg& agg = spans[SpanKey{
            cat, name, by_thread ? static_cast<long long>(tid) : 0}];
        agg.durations_us.push_back(dur);
        agg.total_us += dur;
        ++events;
      }
    } while (reader.Consume(','));
  }
  if (reader.error()) {
    std::fprintf(stderr, "tracereport: parse error in %s\n", path.c_str());
    return 2;
  }

  if (by_thread) {
    std::printf("%-12s %-28s %8s %10s %12s %12s %14s\n", "category", "name",
                "tid", "count", "p50_us", "p99_us", "total_us");
  } else {
    std::printf("%-12s %-28s %10s %12s %12s %14s\n", "category", "name",
                "count", "p50_us", "p99_us", "total_us");
  }
  std::string last_category;
  double category_total = 0;
  std::size_t category_count = 0;
  const auto flush_category = [&] {
    if (last_category.empty()) return;
    if (by_thread) {
      std::printf("%-12s %-28s %8s %10zu %12s %12s %14.1f\n",
                  last_category.c_str(), "(all)", "", category_count, "", "",
                  category_total);
    } else {
      std::printf("%-12s %-28s %10zu %12s %12s %14.1f\n",
                  last_category.c_str(), "(all)", category_count, "", "",
                  category_total);
    }
    category_total = 0;
    category_count = 0;
  };
  for (auto& [key, agg] : spans) {
    if (agg.durations_us.size() < min_count) continue;
    if (key.category != last_category) {
      flush_category();
      last_category = key.category;
    }
    std::sort(agg.durations_us.begin(), agg.durations_us.end());
    if (by_thread) {
      std::printf("%-12s %-28s %8lld %10zu %12.1f %12.1f %14.1f\n",
                  key.category.c_str(), key.name.c_str(), key.tid,
                  agg.durations_us.size(), Quantile(agg.durations_us, 0.50),
                  Quantile(agg.durations_us, 0.99), agg.total_us);
    } else {
      std::printf("%-12s %-28s %10zu %12.1f %12.1f %14.1f\n",
                  key.category.c_str(), key.name.c_str(),
                  agg.durations_us.size(), Quantile(agg.durations_us, 0.50),
                  Quantile(agg.durations_us, 0.99), agg.total_us);
    }
    category_total += agg.total_us;
    category_count += agg.durations_us.size();
  }
  flush_category();
  std::printf("tracereport: %zu span(s) in %zu row(s)\n", events,
              spans.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string category_filter;
  std::size_t min_count = 0;
  bool by_thread = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--category" && i + 1 < argc) {
      category_filter = argv[++i];
    } else if (arg == "--min-count" && i + 1 < argc) {
      min_count = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr,
                                                        10));
    } else if (arg == "--by-thread") {
      by_thread = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: tracereport [--category <cat>] [--min-count N] "
          "[--by-thread] <trace.json>\n");
      return 0;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: tracereport [--category <cat>] [--min-count N] "
                 "[--by-thread] <trace.json>\n");
    return 2;
  }
  return Report(path, category_filter, min_count, by_thread);
}
