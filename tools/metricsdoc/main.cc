// metricsdoc: generates and verifies docs/METRICS.md from the live registry.
//
// Constructs a fully wired CensysEngine (tiny universe, WAL-backed journal,
// view cache, serving frontend) so every BindMetrics() hook runs, then
// walks metrics::Registry::ForEachInstrument:
//
//   --dump-metrics         print the reference table (markdown) to stdout;
//                          regenerating docs/METRICS.md is
//                          `metricsdoc --dump-metrics > docs/METRICS.md`
//   --check <METRICS.md>   exit 1 if any registered metric is missing from
//                          the doc (the tier-1 drift test)
//
// Descriptions live in the table below; the tool exits 2 if a registered
// metric has no description, so adding an instrument forces a doc entry.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "engines/world.h"
#include "query/columnar.h"
#include "query/standing.h"
#include "replicate/group.h"
#include "serving/frontend.h"
#include "serving/replica_router.h"

namespace {

struct MetricDoc {
  // Exact metric name, or a prefix ending in '.' matching a dynamic family
  // (e.g. "censys.scan.pass_permille." covers every scan class gauge).
  const char* name;
  const char* stage;
  const char* meaning;
};

constexpr MetricDoc kDocs[] = {
    {"censys.engine.ticks", "engine", "Simulation ticks executed."},
    {"censys.engine.tick_us", "engine", "Wall time per full tick."},
    {"censys.engine.stage.discovery_us", "engine",
     "Tick stage 1: L4 discovery / target generation."},
    {"censys.engine.stage.interrogate_us", "engine",
     "Tick stages 2-5: scan-queue drain incl. parallel interrogation."},
    {"censys.engine.stage.interrogate_parallel_us", "engine",
     "Parallel fan-out portion of an interrogation batch."},
    {"censys.engine.stage.refresh_us", "engine",
     "Refresh cadence + predictive discovery stage."},
    {"censys.engine.stage.daily_us", "engine",
     "Daily stage: reinjection, CT polling, revalidation, analytics."},
    {"censys.engine.stage.commit_us", "engine",
     "Final stage: eviction sweep and async event delivery."},
    {"censys.scan.candidates", "scan",
     "L4 responsive candidates emitted to the interrogation queue."},
    {"censys.scan.probes_sent", "scan", "L4 probes sent."},
    {"censys.scan.probes_filtered", "scan",
     "L4 probes suppressed by the exclusion list."},
    {"censys.scan.pass_permille.", "scan",
     "Per-class sweep progress through the current pass (0-1000)."},
    {"censys.interrogate.attempts", "interrogate",
     "L7 interrogation attempts."},
    {"censys.interrogate.no_answer", "interrogate",
     "Interrogations where the target never answered."},
    {"censys.interrogate.handshakes", "interrogate",
     "Completed L7 handshakes."},
    {"censys.interrogate.validated", "interrogate",
     "Records confirmed by protocol handshake validation."},
    {"censys.interrogate.unvalidated", "interrogate",
     "Connected sessions that failed handshake validation."},
    {"censys.interrogate.latency_us", "interrogate",
     "Per-candidate interrogation latency."},
    {"censys.pipeline.ingest_scans", "pipeline",
     "Service records ingested by the write side."},
    {"censys.pipeline.ingest_failures", "pipeline",
     "Failed-refresh ingests (service unreachable)."},
    {"censys.pipeline.pseudo_suppressed", "pipeline",
     "Ingests suppressed because the service was a known pseudo-service."},
    {"censys.pipeline.evictions", "pipeline",
     "Services evicted after the unreachability window."},
    {"censys.pipeline.tracked_services", "pipeline",
     "Services currently tracked by the write side."},
    {"censys.replicate.shipments", "replicate",
     "WAL-tail shipments delivered to followers (including faulted ones)."},
    {"censys.replicate.shipped_records", "replicate",
     "WAL records applied by followers from shipments."},
    {"censys.replicate.ship_lost", "replicate",
     "Shipments lost in flight on the replication link."},
    {"censys.replicate.ship_corrupt", "replicate",
     "Shipments delivered with a flipped bit or torn tail."},
    {"censys.replicate.ship_reordered", "replicate",
     "Shipments overtaken by their successor run (gap NACK path)."},
    {"censys.replicate.ship_stalled", "replicate",
     "Shipping rounds where the link silently made no progress."},
    {"censys.replicate.nacks", "replicate",
     "Shipments NACKed by a follower (gap, corrupt frame, or apply "
     "stall); the next pump re-reads from the follower watermark."},
    {"censys.replicate.bootstraps", "replicate",
     "Follower snapshot bootstraps (initial, revival, and pruned-tail "
     "fallback)."},
    {"censys.replicate.max_lag", "replicate",
     "Max LSN lag behind the leader across serving followers."},
    {"censys.replicate.followers_down", "replicate",
     "Followers currently killed / not serving."},
    {"censys.serving.lookups", "serving", "Host view lookups served."},
    {"censys.serving.queries", "serving",
     "Queries served by the frontend (all kinds)."},
    {"censys.serving.qps", "serving",
     "Throughput of the most recent serving batch."},
    {"censys.serving.lookup_us", "serving", "Per-lookup latency."},
    {"censys.serving.shed", "serving",
     "Queries shed when the batch deadline was exhausted."},
    {"censys.serving.degraded", "serving",
     "Lookups answered from stale cache after read faults."},
    {"censys.serving.retries", "serving",
     "Read retries taken on the serving fault ladder."},
    {"censys.serving.read_faults", "serving",
     "Injected/transient read faults observed while serving."},
    {"censys.serving.cache_hits", "serving", "View-cache hits."},
    {"censys.serving.cache_misses", "serving", "View-cache misses."},
    {"censys.serving.cache_evictions", "serving",
     "View-cache LRU evictions."},
    {"censys.serving.cache_invalidations", "serving",
     "View-cache entries dropped as stale on watermark mismatch."},
    {"censys.serving.cache_size", "serving",
     "View-cache resident entries."},
    {"censys.serving.cache_stale_hits", "serving",
     "Degraded reads answered from a stale cached view."},
    {"censys.serving.router.queries", "serving",
     "Queries routed across the replica set."},
    {"censys.serving.router.answered", "serving",
     "Routed queries answered by some replica (fresh or stale)."},
    {"censys.serving.router.stale_answers", "serving",
     "Answers labeled stale (replica watermark behind the leader LSN at "
     "dispatch)."},
    {"censys.serving.router.shed", "serving",
     "Routed queries shed with no replica eligible to try."},
    {"censys.serving.router.failed", "serving",
     "Routed queries where every tried replica failed."},
    {"censys.serving.router.retries", "serving",
     "Routed serve attempts beyond each query's first."},
    {"censys.serving.router.failovers", "serving",
     "Retries that moved to a different replica."},
    {"censys.serving.router.hedged", "serving",
     "Hedge reads mirrored to a second replica."},
    {"censys.serving.router.hedge_wins", "serving",
     "Hedge reads that returned a fresher watermark and won."},
    {"censys.serving.router.replicas_healthy", "serving",
     "Replicas currently healthy in the router's view."},
    {"censys.serving.router.replicas_lagging", "serving",
     "Replicas currently lagging in the router's view."},
    {"censys.serving.router.replicas_down", "serving",
     "Replicas currently down in the router's view."},
    {"censys.query.standing.registered", "query",
     "Standing queries currently registered."},
    {"censys.query.standing.evals", "query",
     "Per-document match evaluations run by the commit observer."},
    {"censys.query.standing.events", "query",
     "Match-set transitions (enter/leave) pushed to subscribers."},
    {"censys.query.standing.dropped", "query",
     "Pending match events dropped because a subscriber fell behind its "
     "per-query cap."},
    {"censys.query.standing.eval_us", "query",
     "Time spent evaluating standing queries per observed commit."},
    {"censys.query.segments_built", "query",
     "Columnar day segments built from the journal."},
    {"censys.query.segment_bytes", "query",
     "Encoded bytes written into columnar segments."},
    {"censys.query.scans", "query",
     "Aggregation scans requested (segment-served or fallback)."},
    {"censys.query.scan_rows", "query",
     "Universe rows covered by segment-served aggregation scans."},
    {"censys.query.segment_corrupt", "query",
     "Segment files rejected by the CRC frame or strict decode; the scan "
     "fell back to the journal walk."},
    {"censys.query.fallback_walks", "query",
     "Aggregation scans answered by the live journal walk (no usable "
     "segment)."},
    {"censys.search.docs", "search",
     "Documents currently in the search index."},
    {"censys.search.indexed", "search",
     "Documents (re)indexed into the search index."},
    {"censys.search.queries", "search", "Search queries executed."},
    {"censys.search.rebuild_us", "search",
     "Full search-index rebuild latency."},
    {"censys.storage.events", "storage", "Events appended to the journal."},
    {"censys.storage.snapshots", "storage", "Entity snapshots written."},
    {"censys.storage.snapshot_bytes", "storage",
     "Bytes written into entity snapshots."},
    {"censys.storage.delta_bytes", "storage",
     "Bytes written into journaled event deltas."},
    {"censys.storage.wal.appends", "storage", "WAL records appended."},
    {"censys.storage.wal.batch_appends", "storage",
     "Group-commit batches appended (one buffered write, at most one "
     "fsync, per batch)."},
    {"censys.storage.wal.bytes", "storage", "WAL bytes appended (framed)."},
    {"censys.storage.wal.fsyncs", "storage", "WAL fsync calls."},
    {"censys.storage.wal.rotations", "storage", "WAL segment rotations."},
    {"censys.storage.wal.replayed", "storage",
     "WAL records replayed during recovery."},
    {"censys.storage.wal.checkpoints", "storage",
     "WAL checkpoints written."},
    {"censys.storage.wal.truncated_bytes", "storage",
     "Torn/corrupt tail bytes truncated during WAL recovery."},
};

const MetricDoc* FindDoc(std::string_view name) {
  for (const MetricDoc& doc : kDocs) {
    const std::size_t n = std::strlen(doc.name);
    if (doc.name[n - 1] == '.') {
      if (name.size() > n && name.substr(0, n) == doc.name) return &doc;
    } else if (name == doc.name) {
      return &doc;
    }
  }
  return nullptr;
}

// A scratch WAL dir so storage.wal.* metrics register; removed on exit.
class ScratchWalDir {
 public:
  ScratchWalDir() {
    path_ = (std::filesystem::temp_directory_path() /
             "censysim-metricsdoc-wal")
                .string();
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~ScratchWalDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

struct Instrument {
  std::string name;
  std::string kind;
};

std::vector<Instrument> RegisteredInstruments(const std::string& wal_dir) {
  censys::engines::WorldConfig cfg;
  cfg.universe.seed = 42;
  cfg.universe.universe_size = 1u << 12;
  cfg.universe.target_services = 400;
  cfg.with_alternatives = false;
  cfg.censys.warm_start = false;
  cfg.censys.journal_options.wal.dir = wal_dir;
  censys::engines::World world(cfg);

  // The serving frontend lives above the engine in the layer DAG; bind one
  // locally so the censys.serving.* instruments register like production.
  censys::serving::ServingFrontend frontend(world.censys().read_side(),
                                            world.censys().search_index(),
                                            world.censys().analytics(),
                                            censys::serving::ServingFrontend::Options{});
  frontend.BindMetrics(&world.censys().metrics());

  // Same for the replica tier: a group + one follower + a router, so the
  // censys.replicate.* and censys.serving.router.* instruments register.
  censys::replicate::ReplicationGroup group(world.censys().journal());
  const censys::replicate::Follower& follower = group.AddFollower("f0");
  group.BindMetrics(&world.censys().metrics());
  censys::serving::ServingFrontend replica_frontend(
      follower.read_side(), follower.index(), follower.analytics(),
      censys::serving::ServingFrontend::Options{});
  censys::serving::ReplicaRouter router(
      {{&replica_frontend, &follower}}, [&group] { return group.leader_lsn(); });
  router.BindMetrics(&world.censys().metrics());

  // The query tier (standing queries + columnar analytics) also lives
  // above the journal; bind both halves so censys.query.* registers.
  censys::query::StandingQueryRegistry standing;
  standing.BindMetrics(&world.censys().metrics());
  censys::query::AnalyticsTier analytics_tier(world.censys().journal(), {});
  analytics_tier.BindMetrics(&world.censys().metrics());

  std::vector<Instrument> instruments;
  world.censys().metrics().ForEachInstrument(
      [&](std::string_view name, std::string_view kind) {
        instruments.push_back({std::string(name), std::string(kind)});
      });
  return instruments;
}

int DumpMetrics(const std::vector<Instrument>& instruments) {
  std::printf("# Metrics reference\n\n");
  std::printf(
      "Generated by `metricsdoc --dump-metrics` from the live registry of a\n"
      "fully wired engine (WAL-backed journal, view cache, serving\n"
      "frontend). Do not edit by hand — regenerate with:\n\n"
      "```sh\n"
      "build/tools/metricsdoc/metricsdoc --dump-metrics > docs/METRICS.md\n"
      "```\n\n"
      "A tier-1 ctest (`metricsdoc_check`) fails if a registered metric is\n"
      "missing from this file. Dynamic families (one instrument per scan\n"
      "class) are listed by prefix with `<class>` in the name.\n\n");
  std::printf("| Metric | Type | Stage | Meaning |\n");
  std::printf("|---|---|---|---|\n");
  std::string last_family;
  int missing = 0;
  for (const Instrument& inst : instruments) {
    const MetricDoc* doc = FindDoc(inst.name);
    if (doc == nullptr) {
      std::fprintf(stderr,
                   "metricsdoc: no description for registered metric %s — "
                   "add it to kDocs in tools/metricsdoc/main.cc\n",
                   inst.name.c_str());
      ++missing;
      continue;
    }
    std::string shown = inst.name;
    if (doc->name[std::strlen(doc->name) - 1] == '.') {
      if (last_family == doc->name) continue;  // one row per family
      last_family = doc->name;
      shown = std::string(doc->name) + "<class>";
    }
    std::printf("| `%s` | %s | %s | %s |\n", shown.c_str(),
                inst.kind.c_str(), doc->stage, doc->meaning);
  }
  return missing == 0 ? 0 : 2;
}

int CheckDoc(const std::vector<Instrument>& instruments,
             const std::string& doc_path) {
  std::ifstream in(doc_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "metricsdoc: cannot read %s\n", doc_path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();

  int missing = 0;
  for (const Instrument& inst : instruments) {
    // Dynamic-family instruments are documented by their prefix row.
    const MetricDoc* entry = FindDoc(inst.name);
    const std::string needle =
        entry != nullptr && entry->name[std::strlen(entry->name) - 1] == '.'
            ? std::string(entry->name) + "<class>"
            : inst.name;
    if (doc.find("`" + needle + "`") == std::string::npos) {
      std::fprintf(stderr,
                   "metricsdoc: registered metric %s is missing from %s "
                   "(expected `%s`) — regenerate with --dump-metrics\n",
                   inst.name.c_str(), doc_path.c_str(), needle.c_str());
      ++missing;
    }
  }
  std::printf("metricsdoc: %zu registered instrument(s), %d missing from "
              "%s\n",
              instruments.size(), missing, doc_path.c_str());
  return missing == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool dump = false;
  std::string check_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--dump-metrics") {
      dump = true;
    } else if (arg == "--check" && i + 1 < argc) {
      check_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: metricsdoc --dump-metrics | --check <METRICS.md>\n");
      return 2;
    }
  }
  if (dump == !check_path.empty()) {
    std::fprintf(stderr,
                 "usage: metricsdoc --dump-metrics | --check <METRICS.md>\n");
    return 2;
  }
  ScratchWalDir wal_dir;
  const std::vector<Instrument> instruments =
      RegisteredInstruments(wal_dir.path());
  return dump ? DumpMetrics(instruments) : CheckDoc(instruments, check_path);
}
