// ICS exposure monitoring (§6.3, §7.2 "Critical Infrastructure
// Monitoring"): map out Internet-exposed industrial control systems the
// way the Censys/EPA water-utility project did — find exposed HMIs and
// PLCs, group them by the organizations that must remediate, and track
// remediation over time.
//
//   $ ./examples/ics_exposure
#include <cstdio>
#include <map>

#include "engines/world.h"

using namespace censys;
using namespace censys::engines;

int main() {
  WorldConfig config;
  config.universe.seed = 11;
  config.universe.universe_size = 1u << 17;
  config.universe.target_services = 16000;
  config.universe.ics_scale = 1024;  // a dense ICS landscape to investigate
  config.with_alternatives = false;

  World world(config);
  world.Bootstrap();
  world.RunForDays(2);
  CensysEngine& censys = world.censys();

  // --- 1. enumerate exposed control systems by protocol ----------------------
  std::printf("Internet-exposed industrial control systems:\n");
  std::map<std::string, std::vector<EngineEntry>> by_protocol;
  std::size_t total = 0;
  for (proto::Protocol protocol : proto::IcsProtocols()) {
    auto entries = censys.QueryProtocol(protocol);
    total += entries.size();
    if (!entries.empty()) {
      by_protocol[std::string(proto::Name(protocol))] = std::move(entries);
    }
  }
  for (const auto& [name, entries] : by_protocol) {
    std::printf("  %-16s %4zu exposed\n", name.c_str(), entries.size());
  }
  std::printf("  total: %zu control systems\n\n", total);

  // --- 2. the reverse-ASM view (§7.2): group exposures by owner --------------
  // "Governments will map out classes of vulnerabilities and then identify
  // the organizations that need help remediating."
  struct OrgExposure {
    std::string org;
    std::size_t count = 0;
    std::size_t on_nonstandard_port = 0;
  };
  std::map<std::uint32_t, OrgExposure> by_asn;
  for (const auto& [name, entries] : by_protocol) {
    for (const EngineEntry& entry : entries) {
      const auto host = censys.read_side().GetHost(entry.key.ip);
      if (!host.has_value()) continue;
      OrgExposure& exposure = by_asn[host->asn];
      exposure.org = host->as_org;
      ++exposure.count;
      const auto primary = proto::PrimaryPort(entry.label);
      if (primary.has_value() && entry.key.port != *primary) {
        ++exposure.on_nonstandard_port;
      }
    }
  }
  std::vector<const OrgExposure*> worst;
  for (const auto& [asn, exposure] : by_asn) worst.push_back(&exposure);
  std::sort(worst.begin(), worst.end(),
            [](const OrgExposure* a, const OrgExposure* b) {
              return a->count > b->count;
            });
  std::printf("organizations with the largest exposed-ICS footprint "
              "(notification targets):\n");
  for (std::size_t i = 0; i < worst.size() && i < 8; ++i) {
    std::printf("  %-28s %3zu exposed (%zu on non-standard ports)\n",
                worst[i]->org.c_str(), worst[i]->count,
                worst[i]->on_nonstandard_port);
  }

  // --- 3. device context from the read side ----------------------------------
  std::printf("\nsample device records (manufacturer/model from handshake + "
              "fingerprints):\n");
  int shown = 0;
  for (const auto& [name, entries] : by_protocol) {
    for (const EngineEntry& entry : entries) {
      if (shown >= 6) break;
      const auto host = censys.read_side().GetHost(entry.key.ip);
      if (!host.has_value()) continue;
      for (const pipeline::ServiceView& svc : host->services) {
        if (svc.record.key != entry.key) continue;
        std::printf("  %s  %-16s %s %s%s\n",
                    entry.key.ToString().c_str(),
                    std::string(proto::Name(svc.record.protocol)).c_str(),
                    svc.record.device.manufacturer.c_str(),
                    svc.record.device.model.c_str(),
                    svc.kev ? "  [known-exploited CVE]" : "");
        ++shown;
      }
    }
  }

  // --- 4. remediation tracking ------------------------------------------------
  // Re-run the map later and measure which exposures disappeared — the
  // EPA engagement measured >97% HMI removal over months; here churn and
  // eviction remove a few within days.
  const std::size_t before = total;
  world.RunForDays(5);
  std::size_t after = 0;
  for (proto::Protocol protocol : proto::IcsProtocols()) {
    after += censys.QueryProtocol(protocol).size();
  }
  std::printf("\nexposure trend: %zu control systems tracked initially, %zu "
              "five days later\n",
              before, after);
  return 0;
}
