// Attack Surface Management (§7.2): the top commercial use case. Given the
// network footprint of one organization, continuously discover its
// Internet-facing assets, surface exposures (risky services, known-
// exploited CVEs, expired certificates), and alert on assets that appear.
//
//   $ ./examples/attack_surface
#include <cstdio>
#include <set>

#include "cert/x509.h"
#include "core/strings.h"
#include "engines/world.h"

using namespace censys;
using namespace censys::engines;

namespace {

// The monitored organization's external perimeter: every block of one ASN.
std::vector<const simnet::NetworkBlock*> OrgFootprint(
    const simnet::BlockPlan& plan, std::uint32_t asn) {
  std::vector<const simnet::NetworkBlock*> blocks;
  for (const simnet::NetworkBlock& block : plan.blocks()) {
    if (block.asn == asn) blocks.push_back(&block);
  }
  return blocks;
}

std::set<std::uint64_t> DiscoverAssets(
    CensysEngine& censys,
    const std::vector<const simnet::NetworkBlock*>& footprint) {
  std::set<std::uint64_t> assets;
  censys.write_side().ForEachTracked([&](const pipeline::ServiceState& s) {
    for (const simnet::NetworkBlock* block : footprint) {
      if (block->cidr.Contains(s.key.ip)) {
        assets.insert(s.key.Pack());
        return;
      }
    }
  });
  return assets;
}

}  // namespace

int main() {
  WorldConfig config;
  config.universe.seed = 31;
  config.universe.universe_size = 1u << 17;
  config.universe.target_services = 20000;
  config.universe.ics_scale = 32;
  config.with_alternatives = false;

  World world(config);
  world.Bootstrap();
  world.RunForDays(2);
  CensysEngine& censys = world.censys();

  // Pick the enterprise with the largest perimeter as our customer.
  std::map<std::uint32_t, std::size_t> enterprise_sizes;
  for (const simnet::NetworkBlock& block : world.internet().blocks().blocks()) {
    if (block.type == simnet::NetworkType::kEnterprise) {
      enterprise_sizes[block.asn] += block.cidr.size();
    }
  }
  std::uint32_t org_asn = 0;
  std::size_t best = 0;
  for (const auto& [asn, size] : enterprise_sizes) {
    if (size > best) {
      best = size;
      org_asn = asn;
    }
  }
  const auto footprint = OrgFootprint(world.internet().blocks(), org_asn);
  std::printf("monitoring AS%u: %zu network blocks, %zu addresses\n\n",
              org_asn, footprint.size(), best);

  // --- 1. asset inventory ------------------------------------------------------
  const std::set<std::uint64_t> baseline = DiscoverAssets(censys, footprint);
  std::printf("asset inventory: %zu Internet-facing services\n", baseline.size());

  // --- 2. exposure report --------------------------------------------------------
  const cert::RootStore roots = cert::RootStore::Default();
  const cert::CrlStore crls;
  int risky = 0, vulnerable = 0, kev = 0, bad_certs = 0;
  for (std::uint64_t packed : baseline) {
    const ServiceKey key = ServiceKey::Unpack(packed);
    const auto host = censys.read_side().GetHost(key.ip);
    if (!host.has_value()) continue;
    for (const pipeline::ServiceView& svc : host->services) {
      if (svc.record.key != key) continue;
      // Initial-access surface: remote desktops, VPN-ish, databases, ICS.
      switch (svc.record.protocol) {
        case proto::Protocol::kRdp:
        case proto::Protocol::kTelnet:
        case proto::Protocol::kVnc:
        case proto::Protocol::kSmb:
        case proto::Protocol::kMysql:
        case proto::Protocol::kRedis:
          ++risky;
          std::printf("  [exposure] %-22s %s\n", key.ToString().c_str(),
                      std::string(proto::Name(svc.record.protocol)).c_str());
          break;
        default:
          if (proto::GetInfo(svc.record.protocol).is_ics) {
            ++risky;
            std::printf("  [exposure] %-22s ICS: %s %s\n",
                        key.ToString().c_str(),
                        svc.record.device.manufacturer.c_str(),
                        svc.record.device.model.c_str());
          }
          break;
      }
      if (!svc.cves.empty()) {
        ++vulnerable;
        if (svc.kev) {
          ++kev;
          std::printf("  [KEV]      %-22s %s %s: %s\n",
                      key.ToString().c_str(),
                      svc.record.software.product.c_str(),
                      svc.record.software.version.c_str(),
                      svc.cves.front().c_str());
        }
      }
      if (svc.record.tls && !svc.record.cert_sha256.empty()) {
        // Re-validate the presented certificate against browser roots.
        // (Certificates expire while services keep running.)
        const cert::Certificate presented = cert::SynthesizeCertificate(
            Fnv1a64(svc.record.cert_sha256), svc.record.sni_name,
            Timestamp{0});
        if (cert::Validate(presented, roots, crls, world.now()) !=
            cert::ValidationStatus::kTrusted) {
          ++bad_certs;
        }
      }
    }
  }
  std::printf(
      "\nexposure summary: %d risky services, %d vulnerable, %d on CISA KEV, "
      "%d TLS endpoints with untrusted/expired certs\n\n",
      risky, vulnerable, kev, bad_certs);

  // --- 3. continuous monitoring: alert on new assets -----------------------------
  world.RunForDays(4);
  const std::set<std::uint64_t> current = DiscoverAssets(censys, footprint);
  int appeared = 0, disappeared = 0;
  for (std::uint64_t packed : current) {
    if (!baseline.contains(packed)) {
      ++appeared;
      if (appeared <= 5) {
        std::printf("  [new asset] %s\n",
                    ServiceKey::Unpack(packed).ToString().c_str());
      }
    }
  }
  for (std::uint64_t packed : baseline) {
    disappeared += !current.contains(packed);
  }
  std::printf(
      "\nafter 4 more days: %d new Internet-facing services appeared, %d "
      "were retired — \"it can be difficult to know when new assets appear\" "
      "(§7.2); continuous scanning is what catches them.\n",
      appeared, disappeared);
  return 0;
}
