// Quickstart: build a simulated Internet, run the Censys engine over it,
// and use the three data-access interfaces of §5.3 — the fast lookup API
// (host views at a timestamp), interactive search, and analytics series.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <memory>

#include "engines/world.h"
#include "engines/evaluation.h"
#include "web/attach.h"

using namespace censys;
using namespace censys::engines;

int main() {
  // --- 1. a world: simulated Internet + the Censys engine --------------------
  WorldConfig config;
  config.universe.seed = 7;
  config.universe.universe_size = 1u << 16;  // a /16-sized sample
  config.universe.target_services = 8000;
  config.universe.ics_scale = 128;
  config.with_alternatives = false;  // just Censys for the quickstart
  // Interrogation worker threads. The journal is byte-identical at any
  // value, 0 (serial) included — try it.
  config.censys.threads = 2;

  World world(config);
  std::printf("simulated Internet: %zu live services across %zu network blocks\n",
              world.internet().ActiveServiceCount(world.now()),
              world.internet().blocks().blocks().size());

  // --- 2. bootstrap the steady-state map and run three simulated days --------
  // Web properties are catalogued by the web layer, wired onto the
  // engine's daily cadence from above (layer DAG: web > engines).
  std::unique_ptr<web::WebPropertyCatalog> catalog =
      web::AttachCatalog(world.censys());
  world.Bootstrap();
  world.RunForDays(3);
  CensysEngine& censys = world.censys();
  std::printf("Censys tracks %zu services (%llu journal events, %zu web "
              "properties)\n\n",
              censys.write_side().tracked_count(),
              static_cast<unsigned long long>(censys.journal().event_count()),
              catalog->size());

  // --- 3. fast lookup API: "what does IP X look like right now?" -------------
  IPv4Address example_ip;
  censys.write_side().ForEachTracked([&](const pipeline::ServiceState& s) {
    if (example_ip.value() == 0) example_ip = s.key.ip;
  });
  if (const auto host = censys.read_side().GetHost(example_ip)) {
    std::printf("host %s (%s, AS%u %s):\n", host->ip.ToString().c_str(),
                host->country.c_str(), host->asn, host->as_org.c_str());
    for (const pipeline::ServiceView& svc : host->services) {
      std::printf("  %5u/%s  %-10s %s %s%s\n", svc.record.key.port,
                  std::string(ToString(svc.record.key.transport)).c_str(),
                  std::string(proto::Name(svc.record.protocol)).c_str(),
                  svc.record.software.product.c_str(),
                  svc.record.software.version.c_str(),
                  svc.pending_eviction ? "  [pending eviction]" : "");
      for (const std::string& cve : svc.cves) {
        std::printf("         vulnerable: %s\n", cve.c_str());
      }
      // Protocol-specific structured fields from the per-protocol scanner.
      int shown = 0;
      for (const auto& [field, value] : svc.record.extra) {
        if (shown++ >= 3) break;
        std::printf("         %s = %s\n", field.c_str(), value.c_str());
      }
    }
    // Historical lookup: the same host a day earlier.
    const auto yesterday = censys.read_side().GetHostAt(
        example_ip, world.now() - Duration::Days(1));
    std::printf("  (one day ago this host had %zu service(s))\n\n",
                yesterday.has_value() ? yesterday->services.size() : 0);
  }

  // --- 4. interactive search --------------------------------------------------
  censys.RebuildSearchIndex();
  std::string error;
  for (const char* query :
       {"svc.443/tcp.service.name: \"HTTPS\"",
        "svc.22/tcp.software.product: openssh",
        "svc.502/tcp.service.name: \"MODBUS\""}) {
    const auto hits = censys.search_index().Search(query, &error);
    std::printf("search %-45s -> %zu hosts\n", query, hits.size());
  }

  // --- 5. analytics: longitudinal protocol series ----------------------------
  std::printf("\ndaily HTTP service counts (analytics snapshots):\n");
  for (const auto& [day, count] :
       censys.analytics().ProtocolSeries("HTTP")) {
    std::printf("  day %lld: %llu\n", static_cast<long long>(day),
                static_cast<unsigned long long>(count));
  }

  // --- 6. pipeline observability ---------------------------------------------
  const TickStats& tick = censys.TickReport();
  std::printf("\nlast tick: %llu candidates, %llu interrogations, "
              "%llu ingests, %llu journal events (%.1f ms total, "
              "%.1f ms interrogation)\n",
              static_cast<unsigned long long>(tick.candidates),
              static_cast<unsigned long long>(tick.interrogations),
              static_cast<unsigned long long>(tick.ingests),
              static_cast<unsigned long long>(tick.journal_events),
              tick.total_us / 1000.0, tick.interrogate_us / 1000.0);
  std::printf("\nmetrics registry:\n%s", censys.metrics().Render().c_str());
  return 0;
}
