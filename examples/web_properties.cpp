// Web Properties and the certificate ecosystem (§4.3, §4.4):
// name-addressed HTTP(S) services discovered through CT logs, and the
// certificate store's validation / revocation / linting pipeline.
//
//   $ ./examples/web_properties
#include <cstdio>
#include <map>
#include <memory>

#include "engines/world.h"
#include "web/attach.h"

using namespace censys;
using namespace censys::engines;

int main() {
  WorldConfig config;
  config.universe.seed = 19;
  config.universe.universe_size = 1u << 17;
  config.universe.target_services = 16000;
  config.universe.sni_only_fraction = 0.10;  // a web-heavy corner of the net
  config.universe.ics_scale = 0;
  config.with_alternatives = false;

  World world(config);
  // The catalog lives above the engine (layer DAG) and is wired onto its
  // daily cadence before the run so it sees every day's CT entries.
  std::unique_ptr<web::WebPropertyCatalog> catalog_ptr =
      web::AttachCatalog(world.censys());
  world.Bootstrap();
  world.RunForDays(3);
  CensysEngine& censys = world.censys();

  // --- 1. web properties discovered from CT ----------------------------------
  auto& catalog = *catalog_ptr;
  std::printf("web properties: %zu catalogued from CT polling, %zu currently "
              "reachable\n",
              catalog.size(), catalog.reachable_count());

  // The paper's motivation: these name-addressed services are invisible to
  // IP scanning — a nameless fetch of the same endpoint serves a generic
  // frontend page.
  int shown = 0;
  catalog.ForEach([&](const web::WebProperty& prop) {
    if (shown >= 5 || !prop.reachable) return;
    ++shown;
    std::printf("  %-34s -> %-21s \"%s\"\n", prop.name.c_str(),
                prop.record.key.ToString().c_str(),
                prop.record.html_title.c_str());
  });

  // Names also arrive from passive-DNS subscriptions (§4.3).
  catalog.AddName("vpn.internal.example.com",
                  web::WebProperty::Source::kPassiveDns, world.now());

  // --- 2. certificate store ----------------------------------------------------
  const auto& store = censys.cert_store();
  auto stats = store.ComputeStats();
  std::printf("\ncertificate store: %zu certificates\n", store.size());
  for (const auto& [status, count] : stats.by_status) {
    std::printf("  %-18s %llu\n", std::string(cert::ToString(status)).c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("  lint errors on %llu certs; %llu CT-only, %llu scan-only\n",
              static_cast<unsigned long long>(stats.with_lint_errors),
              static_cast<unsigned long long>(stats.ct_only),
              static_cast<unsigned long long>(stats.scan_only));

  // --- 3. a takedown workflow: revoke and watch revalidation -----------------
  // Pick a trusted certificate seen on a live endpoint and revoke it (as a
  // CA would during a compromise response); the daily revalidation pass
  // flips its status.
  std::string victim;
  store.ForEach([&](std::string_view fingerprint,
                    const cert::CertificateRecord& record) {
    if (!victim.empty()) return;
    if (record.status == cert::ValidationStatus::kTrusted &&
        !record.presented_by.empty()) {
      victim = std::string(fingerprint);
    }
  });
  if (!victim.empty()) {
    const cert::CertificateRecord* record = store.Get(victim);
    std::printf("\nrevoking cert %.16s... (issuer: %s, presented by %zu "
                "endpoints)\n",
                victim.c_str(), record->certificate.issuer.c_str(),
                record->presented_by.size());
    censys.crl_store().Revoke(record->certificate.issuer,
                              record->certificate.serial, world.now());
    world.RunForDays(1.2);  // the daily cert refresh pass runs
    std::printf("status after revalidation: %s\n",
                std::string(cert::ToString(store.Get(victim)->status)).c_str());
  }

  // --- 4. churn: monthly refresh marks dead names ------------------------------
  world.RunForDays(31);
  std::printf("\nafter a monthly refresh cycle: %zu properties catalogued, "
              "%zu reachable — churn retired %zu name-addressed services "
              "while CT polling kept finding newly issued names\n",
              catalog.size(), catalog.reachable_count(),
              catalog.size() - catalog.reachable_count());
  return 0;
}
