// Threat hunting (§7.2): "identifying malicious servers through specific
// scanners, mapping out relationships between servers (e.g., via SSH
// hostkey or JARM fingerprint)". Adversary kits ship a distinctive TLS
// stack, so distinct C2 hosts share a rare JARM — the pivot this example
// automates: find rare TLS stacks, cluster the hosts that share them, and
// cross-reference certificates.
//
//   $ ./examples/threat_hunting
#include <cstdio>
#include <map>

#include "engines/world.h"
#include "pipeline/entity.h"

using namespace censys;
using namespace censys::engines;

int main() {
  WorldConfig config;
  config.universe.seed = 23;
  config.universe.universe_size = 1u << 17;
  config.universe.target_services = 20000;
  config.universe.ics_scale = 0;
  config.with_alternatives = false;

  World world(config);
  world.Bootstrap();
  world.RunForDays(2);
  CensysEngine& censys = world.censys();

  // --- 1. histogram every JARM fingerprint on the map ------------------------
  std::map<std::string, std::vector<ServiceKey>> by_jarm;
  std::map<std::string, std::vector<ServiceKey>> by_cert;
  censys.journal().ForEachEntity([&](std::string_view entity,
                                     const storage::FieldMap& state) {
    const auto ip = IPv4Address::Parse(std::string(entity));
    if (!ip.has_value()) return;
    for (ServiceKey key : pipeline::ServicesIn(state, *ip)) {
      const auto record = pipeline::RecordFrom(state, key);
      if (!record.has_value() || !record->tls) continue;
      by_jarm[record->jarm].push_back(key);
      by_cert[record->cert_sha256].push_back(key);
    }
  });
  std::printf("TLS landscape: %zu distinct JARM fingerprints, %zu distinct "
              "certificates\n\n",
              by_jarm.size(), by_cert.size());

  // --- 2. hunt: rare stacks shared by a handful of unrelated hosts -----------
  // Common stacks appear on thousands of hosts; C2 kits on a few dozen.
  std::printf("suspicious clusters (rare JARM shared across multiple hosts):\n");
  std::size_t clusters = 0;
  for (const auto& [jarm, services] : by_jarm) {
    if (services.size() < 3 || services.size() > 40) continue;
    // Multiple distinct hosts, not one host with many ports.
    std::map<std::uint32_t, int> hosts;
    for (const ServiceKey& key : services) ++hosts[key.ip.value()];
    if (hosts.size() < 3) continue;
    if (++clusters > 5) break;

    std::printf("  JARM %.20s... -> %zu services on %zu hosts:\n",
                jarm.c_str(), services.size(), hosts.size());
    int shown = 0;
    for (const ServiceKey& key : services) {
      if (shown++ >= 4) break;
      const auto host = censys.read_side().GetHost(key.ip);
      std::printf("    %-22s %s\n", key.ToString().c_str(),
                  host.has_value() ? host->as_org.c_str() : "?");
    }
  }
  if (clusters == 0) {
    std::printf("  (none at this seed — rare stacks exist on ~1/64 of TLS "
                "services; try another seed)\n");
  }

  // --- 3. certificate pivot: "what IPs has certificate X been seen on?" ------
  std::printf("\ncertificate reuse (the Fast Lookup API pivot of §5.3):\n");
  int shown = 0;
  for (const auto& [fingerprint, services] : by_cert) {
    if (services.size() < 2 || shown >= 3) continue;
    std::map<std::uint32_t, int> hosts;
    for (const ServiceKey& key : services) ++hosts[key.ip.value()];
    if (hosts.size() < 2) continue;
    ++shown;
    std::printf("  cert %.16s... presented by %zu endpoints on %zu hosts\n",
                fingerprint.c_str(), services.size(), hosts.size());
  }
  if (shown == 0) {
    std::printf("  (no cross-host certificate reuse at this seed)\n");
  }

  // --- 4. search-driven hunting: default pages on odd ports -------------------
  censys.RebuildSearchIndex();
  std::string error;
  const auto odd = censys.search_index().Search(R"("Index of /")", &error);
  std::printf("\nopen directories ('Index of /'): %zu hosts — the classic "
              "malware-staging hunt\n",
              odd.size());
  return 0;
}
