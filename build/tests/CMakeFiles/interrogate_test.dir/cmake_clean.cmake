file(REMOVE_RECURSE
  "CMakeFiles/interrogate_test.dir/interrogate_test.cc.o"
  "CMakeFiles/interrogate_test.dir/interrogate_test.cc.o.d"
  "interrogate_test"
  "interrogate_test.pdb"
  "interrogate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interrogate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
