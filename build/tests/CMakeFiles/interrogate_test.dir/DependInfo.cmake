
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/interrogate_test.cc" "tests/CMakeFiles/interrogate_test.dir/interrogate_test.cc.o" "gcc" "tests/CMakeFiles/interrogate_test.dir/interrogate_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interrogate/CMakeFiles/censys_interrogate.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/censys_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/censys_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/cert/CMakeFiles/censys_cert.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/censys_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
