# Empty dependencies file for interrogate_test.
# This may be replaced when dependencies are built.
