# Empty compiler generated dependencies file for predict_web_test.
# This may be replaced when dependencies are built.
