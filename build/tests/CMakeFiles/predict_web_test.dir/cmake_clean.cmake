file(REMOVE_RECURSE
  "CMakeFiles/predict_web_test.dir/predict_web_test.cc.o"
  "CMakeFiles/predict_web_test.dir/predict_web_test.cc.o.d"
  "predict_web_test"
  "predict_web_test.pdb"
  "predict_web_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predict_web_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
