file(REMOVE_RECURSE
  "CMakeFiles/scanners_test.dir/scanners_test.cc.o"
  "CMakeFiles/scanners_test.dir/scanners_test.cc.o.d"
  "scanners_test"
  "scanners_test.pdb"
  "scanners_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanners_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
