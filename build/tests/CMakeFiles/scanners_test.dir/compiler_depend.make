# Empty compiler generated dependencies file for scanners_test.
# This may be replaced when dependencies are built.
