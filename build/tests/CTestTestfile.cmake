# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/proto_test[1]_include.cmake")
include("/root/repo/build/tests/simnet_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/scan_test[1]_include.cmake")
include("/root/repo/build/tests/interrogate_test[1]_include.cmake")
include("/root/repo/build/tests/cert_test[1]_include.cmake")
include("/root/repo/build/tests/fingerprint_test[1]_include.cmake")
include("/root/repo/build/tests/search_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/predict_web_test[1]_include.cmake")
include("/root/repo/build/tests/engines_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/evaluation_test[1]_include.cmake")
include("/root/repo/build/tests/scanners_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
