file(REMOVE_RECURSE
  "libcensys_fingerprint.a"
)
