# Empty compiler generated dependencies file for censys_fingerprint.
# This may be replaced when dependencies are built.
