file(REMOVE_RECURSE
  "CMakeFiles/censys_fingerprint.dir/dsl.cc.o"
  "CMakeFiles/censys_fingerprint.dir/dsl.cc.o.d"
  "CMakeFiles/censys_fingerprint.dir/fingerprints.cc.o"
  "CMakeFiles/censys_fingerprint.dir/fingerprints.cc.o.d"
  "CMakeFiles/censys_fingerprint.dir/vulns.cc.o"
  "CMakeFiles/censys_fingerprint.dir/vulns.cc.o.d"
  "libcensys_fingerprint.a"
  "libcensys_fingerprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/censys_fingerprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
