# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("core")
subdirs("simnet")
subdirs("proto")
subdirs("scan")
subdirs("interrogate")
subdirs("predict")
subdirs("cert")
subdirs("web")
subdirs("storage")
subdirs("pipeline")
subdirs("fingerprint")
subdirs("search")
subdirs("engines")
