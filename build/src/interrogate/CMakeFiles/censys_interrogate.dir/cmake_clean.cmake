file(REMOVE_RECURSE
  "CMakeFiles/censys_interrogate.dir/detection.cc.o"
  "CMakeFiles/censys_interrogate.dir/detection.cc.o.d"
  "CMakeFiles/censys_interrogate.dir/interrogator.cc.o"
  "CMakeFiles/censys_interrogate.dir/interrogator.cc.o.d"
  "CMakeFiles/censys_interrogate.dir/record.cc.o"
  "CMakeFiles/censys_interrogate.dir/record.cc.o.d"
  "CMakeFiles/censys_interrogate.dir/scanners.cc.o"
  "CMakeFiles/censys_interrogate.dir/scanners.cc.o.d"
  "libcensys_interrogate.a"
  "libcensys_interrogate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/censys_interrogate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
