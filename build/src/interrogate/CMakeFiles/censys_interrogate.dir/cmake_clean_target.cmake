file(REMOVE_RECURSE
  "libcensys_interrogate.a"
)
