# Empty compiler generated dependencies file for censys_interrogate.
# This may be replaced when dependencies are built.
