# Empty compiler generated dependencies file for censys_engines.
# This may be replaced when dependencies are built.
