file(REMOVE_RECURSE
  "libcensys_engines.a"
)
