file(REMOVE_RECURSE
  "CMakeFiles/censys_engines.dir/access.cc.o"
  "CMakeFiles/censys_engines.dir/access.cc.o.d"
  "CMakeFiles/censys_engines.dir/alternatives.cc.o"
  "CMakeFiles/censys_engines.dir/alternatives.cc.o.d"
  "CMakeFiles/censys_engines.dir/censys_engine.cc.o"
  "CMakeFiles/censys_engines.dir/censys_engine.cc.o.d"
  "CMakeFiles/censys_engines.dir/engine.cc.o"
  "CMakeFiles/censys_engines.dir/engine.cc.o.d"
  "CMakeFiles/censys_engines.dir/evaluation.cc.o"
  "CMakeFiles/censys_engines.dir/evaluation.cc.o.d"
  "CMakeFiles/censys_engines.dir/world.cc.o"
  "CMakeFiles/censys_engines.dir/world.cc.o.d"
  "libcensys_engines.a"
  "libcensys_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/censys_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
