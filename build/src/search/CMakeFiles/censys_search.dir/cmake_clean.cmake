file(REMOVE_RECURSE
  "CMakeFiles/censys_search.dir/analytics.cc.o"
  "CMakeFiles/censys_search.dir/analytics.cc.o.d"
  "CMakeFiles/censys_search.dir/export.cc.o"
  "CMakeFiles/censys_search.dir/export.cc.o.d"
  "CMakeFiles/censys_search.dir/index.cc.o"
  "CMakeFiles/censys_search.dir/index.cc.o.d"
  "CMakeFiles/censys_search.dir/pivots.cc.o"
  "CMakeFiles/censys_search.dir/pivots.cc.o.d"
  "CMakeFiles/censys_search.dir/query.cc.o"
  "CMakeFiles/censys_search.dir/query.cc.o.d"
  "libcensys_search.a"
  "libcensys_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/censys_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
