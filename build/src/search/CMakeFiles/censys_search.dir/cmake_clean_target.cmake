file(REMOVE_RECURSE
  "libcensys_search.a"
)
