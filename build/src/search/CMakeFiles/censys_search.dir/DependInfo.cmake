
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/search/analytics.cc" "src/search/CMakeFiles/censys_search.dir/analytics.cc.o" "gcc" "src/search/CMakeFiles/censys_search.dir/analytics.cc.o.d"
  "/root/repo/src/search/export.cc" "src/search/CMakeFiles/censys_search.dir/export.cc.o" "gcc" "src/search/CMakeFiles/censys_search.dir/export.cc.o.d"
  "/root/repo/src/search/index.cc" "src/search/CMakeFiles/censys_search.dir/index.cc.o" "gcc" "src/search/CMakeFiles/censys_search.dir/index.cc.o.d"
  "/root/repo/src/search/pivots.cc" "src/search/CMakeFiles/censys_search.dir/pivots.cc.o" "gcc" "src/search/CMakeFiles/censys_search.dir/pivots.cc.o.d"
  "/root/repo/src/search/query.cc" "src/search/CMakeFiles/censys_search.dir/query.cc.o" "gcc" "src/search/CMakeFiles/censys_search.dir/query.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/censys_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/censys_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
