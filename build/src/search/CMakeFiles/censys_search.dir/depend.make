# Empty dependencies file for censys_search.
# This may be replaced when dependencies are built.
