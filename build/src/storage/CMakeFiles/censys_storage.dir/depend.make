# Empty dependencies file for censys_storage.
# This may be replaced when dependencies are built.
