
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/delta.cc" "src/storage/CMakeFiles/censys_storage.dir/delta.cc.o" "gcc" "src/storage/CMakeFiles/censys_storage.dir/delta.cc.o.d"
  "/root/repo/src/storage/journal.cc" "src/storage/CMakeFiles/censys_storage.dir/journal.cc.o" "gcc" "src/storage/CMakeFiles/censys_storage.dir/journal.cc.o.d"
  "/root/repo/src/storage/kv.cc" "src/storage/CMakeFiles/censys_storage.dir/kv.cc.o" "gcc" "src/storage/CMakeFiles/censys_storage.dir/kv.cc.o.d"
  "/root/repo/src/storage/serialize.cc" "src/storage/CMakeFiles/censys_storage.dir/serialize.cc.o" "gcc" "src/storage/CMakeFiles/censys_storage.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/censys_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
