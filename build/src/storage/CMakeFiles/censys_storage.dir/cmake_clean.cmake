file(REMOVE_RECURSE
  "CMakeFiles/censys_storage.dir/delta.cc.o"
  "CMakeFiles/censys_storage.dir/delta.cc.o.d"
  "CMakeFiles/censys_storage.dir/journal.cc.o"
  "CMakeFiles/censys_storage.dir/journal.cc.o.d"
  "CMakeFiles/censys_storage.dir/kv.cc.o"
  "CMakeFiles/censys_storage.dir/kv.cc.o.d"
  "CMakeFiles/censys_storage.dir/serialize.cc.o"
  "CMakeFiles/censys_storage.dir/serialize.cc.o.d"
  "libcensys_storage.a"
  "libcensys_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/censys_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
