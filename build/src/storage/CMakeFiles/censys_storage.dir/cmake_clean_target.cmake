file(REMOVE_RECURSE
  "libcensys_storage.a"
)
