file(REMOVE_RECURSE
  "libcensys_predict.a"
)
