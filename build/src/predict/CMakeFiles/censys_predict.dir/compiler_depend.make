# Empty compiler generated dependencies file for censys_predict.
# This may be replaced when dependencies are built.
