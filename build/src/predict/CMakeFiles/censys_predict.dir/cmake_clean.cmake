file(REMOVE_RECURSE
  "CMakeFiles/censys_predict.dir/predictive.cc.o"
  "CMakeFiles/censys_predict.dir/predictive.cc.o.d"
  "libcensys_predict.a"
  "libcensys_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/censys_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
