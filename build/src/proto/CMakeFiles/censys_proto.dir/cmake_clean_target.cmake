file(REMOVE_RECURSE
  "libcensys_proto.a"
)
