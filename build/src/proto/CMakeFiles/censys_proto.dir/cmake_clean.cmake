file(REMOVE_RECURSE
  "CMakeFiles/censys_proto.dir/banner.cc.o"
  "CMakeFiles/censys_proto.dir/banner.cc.o.d"
  "CMakeFiles/censys_proto.dir/protocol.cc.o"
  "CMakeFiles/censys_proto.dir/protocol.cc.o.d"
  "CMakeFiles/censys_proto.dir/tls.cc.o"
  "CMakeFiles/censys_proto.dir/tls.cc.o.d"
  "libcensys_proto.a"
  "libcensys_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/censys_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
