
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/banner.cc" "src/proto/CMakeFiles/censys_proto.dir/banner.cc.o" "gcc" "src/proto/CMakeFiles/censys_proto.dir/banner.cc.o.d"
  "/root/repo/src/proto/protocol.cc" "src/proto/CMakeFiles/censys_proto.dir/protocol.cc.o" "gcc" "src/proto/CMakeFiles/censys_proto.dir/protocol.cc.o.d"
  "/root/repo/src/proto/tls.cc" "src/proto/CMakeFiles/censys_proto.dir/tls.cc.o" "gcc" "src/proto/CMakeFiles/censys_proto.dir/tls.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/censys_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
