# Empty dependencies file for censys_proto.
# This may be replaced when dependencies are built.
