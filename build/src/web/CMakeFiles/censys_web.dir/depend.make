# Empty dependencies file for censys_web.
# This may be replaced when dependencies are built.
