file(REMOVE_RECURSE
  "libcensys_web.a"
)
