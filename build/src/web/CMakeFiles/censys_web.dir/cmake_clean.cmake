file(REMOVE_RECURSE
  "CMakeFiles/censys_web.dir/webprops.cc.o"
  "CMakeFiles/censys_web.dir/webprops.cc.o.d"
  "libcensys_web.a"
  "libcensys_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/censys_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
