file(REMOVE_RECURSE
  "CMakeFiles/censys_scan.dir/cyclic.cc.o"
  "CMakeFiles/censys_scan.dir/cyclic.cc.o.d"
  "CMakeFiles/censys_scan.dir/discovery.cc.o"
  "CMakeFiles/censys_scan.dir/discovery.cc.o.d"
  "CMakeFiles/censys_scan.dir/exclusion.cc.o"
  "CMakeFiles/censys_scan.dir/exclusion.cc.o.d"
  "CMakeFiles/censys_scan.dir/scheduler.cc.o"
  "CMakeFiles/censys_scan.dir/scheduler.cc.o.d"
  "libcensys_scan.a"
  "libcensys_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/censys_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
