# Empty compiler generated dependencies file for censys_scan.
# This may be replaced when dependencies are built.
