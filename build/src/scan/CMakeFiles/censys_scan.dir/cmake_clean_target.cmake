file(REMOVE_RECURSE
  "libcensys_scan.a"
)
