file(REMOVE_RECURSE
  "libcensys_core.a"
)
