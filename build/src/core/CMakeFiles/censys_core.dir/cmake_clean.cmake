file(REMOVE_RECURSE
  "CMakeFiles/censys_core.dir/cidr.cc.o"
  "CMakeFiles/censys_core.dir/cidr.cc.o.d"
  "CMakeFiles/censys_core.dir/clock.cc.o"
  "CMakeFiles/censys_core.dir/clock.cc.o.d"
  "CMakeFiles/censys_core.dir/rng.cc.o"
  "CMakeFiles/censys_core.dir/rng.cc.o.d"
  "CMakeFiles/censys_core.dir/sha256.cc.o"
  "CMakeFiles/censys_core.dir/sha256.cc.o.d"
  "CMakeFiles/censys_core.dir/strings.cc.o"
  "CMakeFiles/censys_core.dir/strings.cc.o.d"
  "CMakeFiles/censys_core.dir/types.cc.o"
  "CMakeFiles/censys_core.dir/types.cc.o.d"
  "libcensys_core.a"
  "libcensys_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/censys_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
