# Empty compiler generated dependencies file for censys_core.
# This may be replaced when dependencies are built.
