
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cidr.cc" "src/core/CMakeFiles/censys_core.dir/cidr.cc.o" "gcc" "src/core/CMakeFiles/censys_core.dir/cidr.cc.o.d"
  "/root/repo/src/core/clock.cc" "src/core/CMakeFiles/censys_core.dir/clock.cc.o" "gcc" "src/core/CMakeFiles/censys_core.dir/clock.cc.o.d"
  "/root/repo/src/core/rng.cc" "src/core/CMakeFiles/censys_core.dir/rng.cc.o" "gcc" "src/core/CMakeFiles/censys_core.dir/rng.cc.o.d"
  "/root/repo/src/core/sha256.cc" "src/core/CMakeFiles/censys_core.dir/sha256.cc.o" "gcc" "src/core/CMakeFiles/censys_core.dir/sha256.cc.o.d"
  "/root/repo/src/core/strings.cc" "src/core/CMakeFiles/censys_core.dir/strings.cc.o" "gcc" "src/core/CMakeFiles/censys_core.dir/strings.cc.o.d"
  "/root/repo/src/core/types.cc" "src/core/CMakeFiles/censys_core.dir/types.cc.o" "gcc" "src/core/CMakeFiles/censys_core.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
