file(REMOVE_RECURSE
  "libcensys_pipeline.a"
)
