
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/entity.cc" "src/pipeline/CMakeFiles/censys_pipeline.dir/entity.cc.o" "gcc" "src/pipeline/CMakeFiles/censys_pipeline.dir/entity.cc.o.d"
  "/root/repo/src/pipeline/read_side.cc" "src/pipeline/CMakeFiles/censys_pipeline.dir/read_side.cc.o" "gcc" "src/pipeline/CMakeFiles/censys_pipeline.dir/read_side.cc.o.d"
  "/root/repo/src/pipeline/write_side.cc" "src/pipeline/CMakeFiles/censys_pipeline.dir/write_side.cc.o" "gcc" "src/pipeline/CMakeFiles/censys_pipeline.dir/write_side.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/censys_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/censys_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/interrogate/CMakeFiles/censys_interrogate.dir/DependInfo.cmake"
  "/root/repo/build/src/fingerprint/CMakeFiles/censys_fingerprint.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/censys_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/cert/CMakeFiles/censys_cert.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/censys_proto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
