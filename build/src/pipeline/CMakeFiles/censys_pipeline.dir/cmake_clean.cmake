file(REMOVE_RECURSE
  "CMakeFiles/censys_pipeline.dir/entity.cc.o"
  "CMakeFiles/censys_pipeline.dir/entity.cc.o.d"
  "CMakeFiles/censys_pipeline.dir/read_side.cc.o"
  "CMakeFiles/censys_pipeline.dir/read_side.cc.o.d"
  "CMakeFiles/censys_pipeline.dir/write_side.cc.o"
  "CMakeFiles/censys_pipeline.dir/write_side.cc.o.d"
  "libcensys_pipeline.a"
  "libcensys_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/censys_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
