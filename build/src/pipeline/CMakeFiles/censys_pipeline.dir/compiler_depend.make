# Empty compiler generated dependencies file for censys_pipeline.
# This may be replaced when dependencies are built.
