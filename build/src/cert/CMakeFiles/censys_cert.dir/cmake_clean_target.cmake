file(REMOVE_RECURSE
  "libcensys_cert.a"
)
