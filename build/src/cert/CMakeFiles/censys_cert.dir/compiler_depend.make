# Empty compiler generated dependencies file for censys_cert.
# This may be replaced when dependencies are built.
