
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cert/ct.cc" "src/cert/CMakeFiles/censys_cert.dir/ct.cc.o" "gcc" "src/cert/CMakeFiles/censys_cert.dir/ct.cc.o.d"
  "/root/repo/src/cert/store.cc" "src/cert/CMakeFiles/censys_cert.dir/store.cc.o" "gcc" "src/cert/CMakeFiles/censys_cert.dir/store.cc.o.d"
  "/root/repo/src/cert/x509.cc" "src/cert/CMakeFiles/censys_cert.dir/x509.cc.o" "gcc" "src/cert/CMakeFiles/censys_cert.dir/x509.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/censys_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
