file(REMOVE_RECURSE
  "CMakeFiles/censys_cert.dir/ct.cc.o"
  "CMakeFiles/censys_cert.dir/ct.cc.o.d"
  "CMakeFiles/censys_cert.dir/store.cc.o"
  "CMakeFiles/censys_cert.dir/store.cc.o.d"
  "CMakeFiles/censys_cert.dir/x509.cc.o"
  "CMakeFiles/censys_cert.dir/x509.cc.o.d"
  "libcensys_cert.a"
  "libcensys_cert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/censys_cert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
