file(REMOVE_RECURSE
  "libcensys_simnet.a"
)
