# Empty dependencies file for censys_simnet.
# This may be replaced when dependencies are built.
