file(REMOVE_RECURSE
  "CMakeFiles/censys_simnet.dir/blocks.cc.o"
  "CMakeFiles/censys_simnet.dir/blocks.cc.o.d"
  "CMakeFiles/censys_simnet.dir/internet.cc.o"
  "CMakeFiles/censys_simnet.dir/internet.cc.o.d"
  "libcensys_simnet.a"
  "libcensys_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/censys_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
