# Empty dependencies file for web_properties.
# This may be replaced when dependencies are built.
