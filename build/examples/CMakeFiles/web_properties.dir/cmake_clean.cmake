file(REMOVE_RECURSE
  "CMakeFiles/web_properties.dir/web_properties.cpp.o"
  "CMakeFiles/web_properties.dir/web_properties.cpp.o.d"
  "web_properties"
  "web_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
