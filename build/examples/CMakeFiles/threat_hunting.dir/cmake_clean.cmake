file(REMOVE_RECURSE
  "CMakeFiles/threat_hunting.dir/threat_hunting.cpp.o"
  "CMakeFiles/threat_hunting.dir/threat_hunting.cpp.o.d"
  "threat_hunting"
  "threat_hunting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threat_hunting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
