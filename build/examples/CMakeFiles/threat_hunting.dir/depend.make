# Empty dependencies file for threat_hunting.
# This may be replaced when dependencies are built.
