file(REMOVE_RECURSE
  "CMakeFiles/ics_exposure.dir/ics_exposure.cpp.o"
  "CMakeFiles/ics_exposure.dir/ics_exposure.cpp.o.d"
  "ics_exposure"
  "ics_exposure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ics_exposure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
