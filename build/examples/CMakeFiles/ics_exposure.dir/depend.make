# Empty dependencies file for ics_exposure.
# This may be replaced when dependencies are built.
