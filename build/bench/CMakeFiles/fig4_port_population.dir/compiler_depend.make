# Empty compiler generated dependencies file for fig4_port_population.
# This may be replaced when dependencies are built.
