file(REMOVE_RECURSE
  "CMakeFiles/fig4_port_population.dir/fig4_port_population.cc.o"
  "CMakeFiles/fig4_port_population.dir/fig4_port_population.cc.o.d"
  "fig4_port_population"
  "fig4_port_population.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_port_population.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
