file(REMOVE_RECURSE
  "CMakeFiles/fig2_freshness.dir/fig2_freshness.cc.o"
  "CMakeFiles/fig2_freshness.dir/fig2_freshness.cc.o.d"
  "fig2_freshness"
  "fig2_freshness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_freshness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
