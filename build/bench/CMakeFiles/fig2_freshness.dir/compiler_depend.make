# Empty compiler generated dependencies file for fig2_freshness.
# This may be replaced when dependencies are built.
