
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_core.cc" "bench/CMakeFiles/micro_core.dir/micro_core.cc.o" "gcc" "bench/CMakeFiles/micro_core.dir/micro_core.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engines/CMakeFiles/censys_engines.dir/DependInfo.cmake"
  "/root/repo/build/src/scan/CMakeFiles/censys_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/censys_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/web/CMakeFiles/censys_web.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/censys_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/interrogate/CMakeFiles/censys_interrogate.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/censys_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/cert/CMakeFiles/censys_cert.dir/DependInfo.cmake"
  "/root/repo/build/src/fingerprint/CMakeFiles/censys_fingerprint.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/censys_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/censys_search.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/censys_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/censys_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
