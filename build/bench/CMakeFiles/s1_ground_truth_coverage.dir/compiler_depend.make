# Empty compiler generated dependencies file for s1_ground_truth_coverage.
# This may be replaced when dependencies are built.
