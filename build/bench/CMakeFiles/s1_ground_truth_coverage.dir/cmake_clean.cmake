file(REMOVE_RECURSE
  "CMakeFiles/s1_ground_truth_coverage.dir/s1_ground_truth_coverage.cc.o"
  "CMakeFiles/s1_ground_truth_coverage.dir/s1_ground_truth_coverage.cc.o.d"
  "s1_ground_truth_coverage"
  "s1_ground_truth_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s1_ground_truth_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
