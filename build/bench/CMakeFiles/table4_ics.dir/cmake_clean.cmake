file(REMOVE_RECURSE
  "CMakeFiles/table4_ics.dir/table4_ics.cc.o"
  "CMakeFiles/table4_ics.dir/table4_ics.cc.o.d"
  "table4_ics"
  "table4_ics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_ics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
