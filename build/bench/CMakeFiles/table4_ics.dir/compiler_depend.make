# Empty compiler generated dependencies file for table4_ics.
# This may be replaced when dependencies are built.
