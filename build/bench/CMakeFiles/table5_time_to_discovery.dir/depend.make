# Empty dependencies file for table5_time_to_discovery.
# This may be replaced when dependencies are built.
