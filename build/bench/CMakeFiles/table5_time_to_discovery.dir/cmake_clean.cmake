file(REMOVE_RECURSE
  "CMakeFiles/table5_time_to_discovery.dir/table5_time_to_discovery.cc.o"
  "CMakeFiles/table5_time_to_discovery.dir/table5_time_to_discovery.cc.o.d"
  "table5_time_to_discovery"
  "table5_time_to_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_time_to_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
