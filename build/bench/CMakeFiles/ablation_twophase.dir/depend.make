# Empty dependencies file for ablation_twophase.
# This may be replaced when dependencies are built.
