file(REMOVE_RECURSE
  "CMakeFiles/ablation_predictive.dir/ablation_predictive.cc.o"
  "CMakeFiles/ablation_predictive.dir/ablation_predictive.cc.o.d"
  "ablation_predictive"
  "ablation_predictive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_predictive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
