# Empty dependencies file for ablation_predictive.
# This may be replaced when dependencies are built.
