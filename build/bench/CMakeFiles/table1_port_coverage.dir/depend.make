# Empty dependencies file for table1_port_coverage.
# This may be replaced when dependencies are built.
