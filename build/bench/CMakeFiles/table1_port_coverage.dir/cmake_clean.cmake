file(REMOVE_RECURSE
  "CMakeFiles/table1_port_coverage.dir/table1_port_coverage.cc.o"
  "CMakeFiles/table1_port_coverage.dir/table1_port_coverage.cc.o.d"
  "table1_port_coverage"
  "table1_port_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_port_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
