# Empty dependencies file for table3_country_protocol.
# This may be replaced when dependencies are built.
