file(REMOVE_RECURSE
  "CMakeFiles/table3_country_protocol.dir/table3_country_protocol.cc.o"
  "CMakeFiles/table3_country_protocol.dir/table3_country_protocol.cc.o.d"
  "table3_country_protocol"
  "table3_country_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_country_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
