# Empty dependencies file for storage_growth.
# This may be replaced when dependencies are built.
