file(REMOVE_RECURSE
  "CMakeFiles/storage_growth.dir/storage_growth.cc.o"
  "CMakeFiles/storage_growth.dir/storage_growth.cc.o.d"
  "storage_growth"
  "storage_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
