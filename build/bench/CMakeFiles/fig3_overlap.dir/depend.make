# Empty dependencies file for fig3_overlap.
# This may be replaced when dependencies are built.
