# Empty dependencies file for table2_coverage_accuracy.
# This may be replaced when dependencies are built.
