file(REMOVE_RECURSE
  "CMakeFiles/table2_coverage_accuracy.dir/table2_coverage_accuracy.cc.o"
  "CMakeFiles/table2_coverage_accuracy.dir/table2_coverage_accuracy.cc.o.d"
  "table2_coverage_accuracy"
  "table2_coverage_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_coverage_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
