file(REMOVE_RECURSE
  "CMakeFiles/fig5_sample_convergence.dir/fig5_sample_convergence.cc.o"
  "CMakeFiles/fig5_sample_convergence.dir/fig5_sample_convergence.cc.o.d"
  "fig5_sample_convergence"
  "fig5_sample_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_sample_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
