# Empty dependencies file for fig5_sample_convergence.
# This may be replaced when dependencies are built.
